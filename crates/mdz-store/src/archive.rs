//! The indexed `.mdz` archive (container version 2): writer, appender,
//! recovery scan, and index parser.
//!
//! Layout:
//!
//! ```text
//! magic "MDZA" · version u8 (= 2) · flags u8
//! uvarint n_atoms · uvarint n_frames · uvarint buffer_size · uvarint epoch_interval
//! uvarint meta_len · meta                  — LZ-compressed element + comment text
//! repeated: uvarint block_len · u64 fnv1a checksum (LE) · trajectory container
//! footer payload (v2): uvarint n_frames · uvarint n_blocks
//!                      · per-block uvarint offset delta
//!                      · uvarint n_epochs · per-epoch uvarint start-block delta
//! footer trailer: crc32(payload) u32 LE · payload_len u64 LE · footer version u8 · "MDZI"
//! ```
//!
//! The body is byte-compatible with the version-1 archive except for two
//! additions:
//!
//! * **Epochs** — every `epoch_interval` buffers the compressor re-anchors
//!   its stream state ([`mdz_core::Compressor::reset_stream`]), so the first
//!   buffer of each epoch decodes standalone and a reader can start decoding
//!   at any epoch boundary instead of replaying from frame zero.
//! * **Footer index** — byte offsets of every block record, checksummed and
//!   framed from the *end* of the file so it can be located without scanning.
//!   Offsets in the payload are delta-coded (first entry absolute).
//!
//! # Appends and crash consistency
//!
//! Archives are appendable ([`append_store`]) under a footer-flip protocol:
//! new block records are written *after* the current footer's trailer, the
//! data is synced, and only then is a fresh footer written at the new tail
//! and synced. The old footer's bytes become dead padding between the last
//! old block and the first new one — readers never look at them, because the
//! footer is located from the end of the file. A crash at any point leaves
//! either the old footer as the last valid one (the append never happened)
//! or the new footer fully durable (the append happened); [`recover_slice`]
//! scans backward to the last CRC-valid footer and [`recover_store`]
//! truncates any garbage tail after it. All writes flow through
//! [`crate::io::StoreIo`], which is how the crash-consistency tests inject
//! faults deterministically ([`crate::io::FaultIo`]).
//!
//! Because an append changes the frame count and the epoch anchor points but
//! must not rewrite the header in place, the footer written by this module
//! (version 2) carries the authoritative `n_frames` and the explicit list of
//! epoch start blocks; the header's `n_frames` is the creation-time count
//! and only a lower bound after appends. Version-1 footers (fixed epoch
//! stride, header-authoritative frame count) are still parsed.
//!
//! Version-1 archives carry neither epochs nor footer, but
//! [`ArchiveIndex::parse`] still accepts them by scanning the block records
//! once: the whole archive is treated as a single epoch, so seeks replay
//! from the start — correct, just not O(epoch).

use crate::io::{MemIo, StoreIo};
use mdz_core::checksum::{crc32, fnv1a64};
use mdz_core::traj::assemble_container;
use mdz_core::{Compressor, Frame, MdzConfig, MdzError, Obs, Result};
use mdz_entropy::{read_uvarint, write_uvarint};
use mdz_lossless::lz77;
use mdz_lossless::StreamLimits;

/// Archive magic (shared with version 1).
pub const MAGIC: [u8; 4] = *b"MDZA";
/// Container version written by [`write_store`].
pub const VERSION_V2: u8 = 2;
/// Footer trailer magic, the last four bytes of a version-2 archive.
pub const FOOTER_MAGIC: [u8; 4] = *b"MDZI";
/// Legacy footer layout: block offsets only; frame count and epoch stride
/// come from the header. Still parsed, no longer written.
pub const FOOTER_VERSION: u8 = 1;
/// Footer layout written by [`create_store`]/[`append_store`]: carries the
/// authoritative frame count and explicit epoch start blocks, so appends
/// never rewrite the header.
pub const FOOTER_VERSION_V2: u8 = 2;
/// Fixed trailer size: crc32 (4) + payload length (8) + version (1) + magic (4).
pub const FOOTER_TRAILER_LEN: usize = 17;
/// Header flag bit: coordinates were narrowed to `f32` before compression.
pub const STORE_FLAG_F32: u8 = 0b0000_0001;

/// Coordinate precision the store compresses at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full `f64` coordinates (default).
    #[default]
    F64,
    /// Narrow to `f32` before compression; decoded values are widened back.
    /// The error bound then holds relative to the narrowed values.
    F32,
}

/// Options for [`write_store`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Compressor configuration applied to each axis stream.
    pub cfg: MdzConfig,
    /// Frames per buffer (block).
    pub buffer_size: usize,
    /// Buffers per epoch: the compressor re-anchors every this many buffers.
    /// `1` makes every buffer standalone; larger values trade seek
    /// granularity for ratio (MT/VQT predictors keep their history longer).
    pub epoch_interval: usize,
    /// Coordinate precision.
    pub precision: Precision,
    /// Recorder attached to the per-axis compressors, so writing an
    /// archive surfaces pipeline metrics (`core.encode.*`, ADP winner
    /// counts) in a caller registry. No-op (free) by default.
    pub obs: Obs,
}

impl StoreOptions {
    /// Paper-style defaults: 128-frame buffers, 8-buffer epochs, `f64`.
    pub fn new(cfg: MdzConfig) -> Self {
        Self {
            cfg,
            buffer_size: 128,
            epoch_interval: 8,
            precision: Precision::F64,
            obs: Obs::noop(),
        }
    }
}

/// One block record in the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Absolute byte offset of the record (its leading length uvarint).
    pub offset: usize,
    /// Index of the first frame stored in this block.
    pub frame_start: usize,
    /// Number of frames stored in this block.
    pub n_frames: usize,
    /// Epoch the block belongs to.
    pub epoch: usize,
}

/// Parsed archive header plus the block index.
#[derive(Debug, Clone)]
pub struct ArchiveIndex {
    /// Container version (1 or 2).
    pub version: u8,
    /// Whether coordinates were narrowed to `f32` before compression.
    pub f32_source: bool,
    /// Atoms per frame.
    pub n_atoms: usize,
    /// Total frames in the archive (from the footer when it carries a frame
    /// count — the header's count is creation-time only).
    pub n_frames: usize,
    /// Frames per buffer.
    pub buffer_size: usize,
    /// Nominal buffers per epoch (for version 1: the whole archive is one
    /// epoch). Appended segments re-anchor on their own stride, so use
    /// [`ArchiveIndex::epoch_starts`] — not this — to locate anchors.
    pub epoch_interval: usize,
    /// Block index at which each epoch starts (first entry is always 0,
    /// strictly increasing). The authoritative re-anchor points.
    pub epoch_starts: Vec<usize>,
    /// Element symbols from the metadata block.
    pub elements: Vec<String>,
    /// Per-frame comment lines from the metadata block.
    pub comments: Vec<String>,
    /// One entry per block, in file order.
    pub blocks: Vec<BlockEntry>,
}

impl ArchiveIndex {
    /// Number of epochs the archive divides into.
    pub fn n_epochs(&self) -> usize {
        self.epoch_starts.len()
    }

    /// Block indices belonging to `epoch` (clamped to the block count).
    pub fn epoch_blocks(&self, epoch: usize) -> std::ops::Range<usize> {
        let n = self.blocks.len();
        let start = self.epoch_starts.get(epoch).copied().unwrap_or(n).min(n);
        let end = self.epoch_starts.get(epoch + 1).copied().unwrap_or(n).min(n);
        start..end
    }

    /// First frame index covered by `epoch`.
    pub fn epoch_frame_start(&self, epoch: usize) -> usize {
        self.epoch_blocks(epoch).start * self.buffer_size
    }

    /// Epoch containing `frame` (clamped to the last epoch).
    pub fn epoch_of_frame(&self, frame: usize) -> usize {
        let block = frame / self.buffer_size.max(1);
        epoch_of_block(&self.epoch_starts, block)
    }

    /// Parses a version-1 or version-2 archive into an index without
    /// decoding any frame data.
    pub fn parse(data: &[u8]) -> Result<Self> {
        let header = parse_store_header(data)?;
        let footer = match header.version {
            VERSION_V2 => parse_footer(data, &header)?,
            // Version 1: no footer — scan the record lengths once. The whole
            // archive forms a single epoch (no re-anchor points exist).
            _ => {
                let expected_blocks = header.n_frames.div_ceil(header.buffer_size);
                FooterInfo {
                    offsets: scan_v1_records(data, header.body_start, expected_blocks)?,
                    n_frames: header.n_frames,
                    epoch_starts: vec![0],
                }
            }
        };
        let epoch_interval = if header.version == VERSION_V2 {
            header.epoch_interval.max(1)
        } else {
            footer.offsets.len().max(1)
        };
        let entries = footer
            .offsets
            .iter()
            .enumerate()
            .map(|(i, &offset)| BlockEntry {
                offset,
                frame_start: i * header.buffer_size,
                n_frames: header.buffer_size.min(footer.n_frames - i * header.buffer_size),
                epoch: epoch_of_block(&footer.epoch_starts, i),
            })
            .collect();
        Ok(ArchiveIndex {
            version: header.version,
            f32_source: header.f32_source,
            n_atoms: header.n_atoms,
            n_frames: footer.n_frames,
            buffer_size: header.buffer_size,
            epoch_interval,
            epoch_starts: footer.epoch_starts,
            elements: header.elements,
            comments: header.comments,
            blocks: entries,
        })
    }
}

/// Epoch that block `block` belongs to, given the epoch start list.
fn epoch_of_block(epoch_starts: &[usize], block: usize) -> usize {
    epoch_starts.partition_point(|&s| s <= block).saturating_sub(1)
}

/// Reads the block record at `offset`, verifying its FNV-1a checksum, and
/// returns the contained trajectory container bytes.
pub fn record_at(data: &[u8], offset: usize) -> Result<&[u8]> {
    let mut pos = offset;
    if pos >= data.len() {
        return Err(MdzError::Corrupt { what: "block offset past end of archive" });
    }
    let len = read_uvarint(data, &mut pos)? as usize;
    let sum_bytes =
        data.get(pos..pos + 8).ok_or(MdzError::Corrupt { what: "truncated block checksum" })?;
    pos += 8;
    let expected = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= data.len())
        .ok_or(MdzError::Corrupt { what: "truncated block record" })?;
    let block = &data[pos..end];
    if fnv1a64(block) != expected {
        return Err(MdzError::Corrupt { what: "block checksum mismatch" });
    }
    Ok(block)
}

/// Compresses a trajectory into an indexed version-2 archive in memory.
///
/// `elements` and `comments` are stored losslessly (same metadata block as
/// version 1); pass empty slices when the source has none. Convenience
/// wrapper around [`create_store`] over a [`MemIo`].
pub fn write_store(
    frames: &[Frame],
    elements: &[String],
    comments: &[String],
    opts: &StoreOptions,
) -> Result<Vec<u8>> {
    let mut io = MemIo::new(Vec::new());
    create_store(&mut io, frames, elements, comments, opts)?;
    Ok(io.into_bytes())
}

/// Compresses a trajectory into an indexed version-2 archive on `io`,
/// replacing any existing contents.
///
/// Durability protocol: header and block records are written first and
/// synced, then the footer is written at the tail and synced. The archive
/// is published (readable) only once the footer is durable.
pub fn create_store(
    io: &mut dyn StoreIo,
    frames: &[Frame],
    elements: &[String],
    comments: &[String],
    opts: &StoreOptions,
) -> Result<()> {
    if frames.is_empty() {
        return Err(MdzError::BadInput("trajectory has no frames"));
    }
    let n_atoms = frames[0].len();
    if frames.iter().any(|f| f.len() != n_atoms || f.y.len() != n_atoms || f.z.len() != n_atoms) {
        return Err(MdzError::BadInput("ragged frames: atom counts differ"));
    }
    if opts.buffer_size == 0 {
        return Err(MdzError::BadConfig("buffer_size must be positive"));
    }
    if opts.epoch_interval == 0 {
        return Err(MdzError::BadConfig("epoch_interval must be positive"));
    }
    opts.cfg.validate()?;

    let mut head = Vec::new();
    head.extend_from_slice(&MAGIC);
    head.push(VERSION_V2);
    head.push(match opts.precision {
        Precision::F64 => 0,
        Precision::F32 => STORE_FLAG_F32,
    });
    write_uvarint(&mut head, n_atoms as u64);
    write_uvarint(&mut head, frames.len() as u64);
    write_uvarint(&mut head, opts.buffer_size as u64);
    write_uvarint(&mut head, opts.epoch_interval as u64);
    let mut meta = String::new();
    meta.push_str(&elements.join(" "));
    meta.push('\n');
    for c in comments {
        meta.push_str(c);
        meta.push('\n');
    }
    let meta_c = lz77::compress(meta.as_bytes(), lz77::Level::Default);
    write_uvarint(&mut head, meta_c.len() as u64);
    head.extend_from_slice(&meta_c);

    io.truncate(0)?;
    io.write_at(0, &head)?;
    let mut pos = head.len() as u64;
    let offsets = write_blocks(io, &mut pos, frames, opts.buffer_size, opts.epoch_interval, opts)?;
    io.sync()?;

    let epoch_starts: Vec<usize> = (0..offsets.len()).step_by(opts.epoch_interval).collect();
    let footer = footer_bytes(frames.len(), &offsets, &epoch_starts);
    io.write_at(pos, &footer)?;
    io.sync()?;
    Ok(())
}

/// Report returned by [`append_store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReport {
    /// Frames added by this append.
    pub appended_frames: usize,
    /// Block records added by this append.
    pub appended_blocks: usize,
    /// Garbage tail bytes truncated by the implicit recovery pass before
    /// appending (0 for a cleanly closed archive).
    pub recovered_bytes: usize,
    /// Total frames in the archive after the append.
    pub n_frames: usize,
}

/// Appends frames to an existing version-2 archive under the footer-flip
/// protocol (see the module docs): recover to the last valid footer, write
/// the new block records after its trailer, sync the data, then write and
/// sync a fresh footer at the new tail. A crash at any point leaves the
/// archive readable as either the pre-append or the post-append state.
///
/// The archive's geometry wins: frames are blocked by its `buffer_size`,
/// the appended segment re-anchors on its `epoch_interval` stride (starting
/// with a fresh anchor at the segment's first block), and `opts.precision`
/// must match the archive's. `opts.buffer_size`/`opts.epoch_interval` are
/// ignored. The archive's frame count must be a multiple of its buffer size
/// (a partial tail block cannot be extended in place).
pub fn append_store(
    io: &mut dyn StoreIo,
    frames: &[Frame],
    opts: &StoreOptions,
) -> Result<AppendReport> {
    let data = io.read_all()?;
    let (valid_len, index) = recover_slice(&data)?;
    let recovered_bytes = data.len() - valid_len;
    drop(data);
    if recovered_bytes > 0 {
        io.truncate(valid_len as u64)?;
        io.sync()?;
    }
    if index.version != VERSION_V2 {
        return Err(MdzError::BadInput("append requires a version-2 archive"));
    }
    if frames.is_empty() {
        return Err(MdzError::BadInput("no frames to append"));
    }
    if frames.iter().any(|f| {
        f.len() != index.n_atoms || f.y.len() != index.n_atoms || f.z.len() != index.n_atoms
    }) {
        return Err(MdzError::BadInput("appended frames disagree with archive atom count"));
    }
    if index.n_frames % index.buffer_size != 0 {
        return Err(MdzError::BadInput("append requires the archive's last block to be full"));
    }
    if (opts.precision == Precision::F32) != index.f32_source {
        return Err(MdzError::BadConfig("append precision must match the archive"));
    }
    opts.cfg.validate()?;

    let base_blocks = index.blocks.len();
    let mut pos = valid_len as u64;
    let new_offsets =
        write_blocks(io, &mut pos, frames, index.buffer_size, index.epoch_interval, opts)?;
    io.sync()?;

    let mut offsets: Vec<usize> = index.blocks.iter().map(|b| b.offset).collect();
    offsets.extend_from_slice(&new_offsets);
    let mut epoch_starts = index.epoch_starts.clone();
    epoch_starts
        .extend((0..new_offsets.len()).step_by(index.epoch_interval).map(|j| base_blocks + j));
    let n_frames = index.n_frames + frames.len();
    let footer = footer_bytes(n_frames, &offsets, &epoch_starts);
    io.write_at(pos, &footer)?;
    io.sync()?;
    Ok(AppendReport {
        appended_frames: frames.len(),
        appended_blocks: new_offsets.len(),
        recovered_bytes,
        n_frames,
    })
}

/// Compresses `frames` into block records at `*pos`, advancing it; returns
/// the absolute offset of each record. Fresh per-axis compressors anchor the
/// segment's first block; the stream re-anchors every `epoch_interval`
/// blocks after that.
fn write_blocks(
    io: &mut dyn StoreIo,
    pos: &mut u64,
    frames: &[Frame],
    buffer_size: usize,
    epoch_interval: usize,
    opts: &StoreOptions,
) -> Result<Vec<usize>> {
    let mut axes = [
        Compressor::new(opts.cfg.clone()),
        Compressor::new(opts.cfg.clone()),
        Compressor::new(opts.cfg.clone()),
    ];
    for c in axes.iter_mut() {
        c.set_obs(opts.obs.clone());
    }
    let mut offsets = Vec::new();
    let mut record = Vec::new();
    for (i, chunk) in frames.chunks(buffer_size).enumerate() {
        if i > 0 && i % epoch_interval == 0 {
            for c in axes.iter_mut() {
                c.reset_stream();
            }
        }
        let blocks = compress_chunk(&mut axes, chunk, opts.precision)?;
        let container = assemble_container(&blocks);
        record.clear();
        write_uvarint(&mut record, container.len() as u64);
        record.extend_from_slice(&fnv1a64(&container).to_le_bytes());
        record.extend_from_slice(&container);
        io.write_at(*pos, &record)?;
        offsets.push(*pos as usize);
        *pos += record.len() as u64;
    }
    Ok(offsets)
}

/// Serializes a version-2 footer (payload + trailer) for the given state.
fn footer_bytes(n_frames: usize, offsets: &[usize], epoch_starts: &[usize]) -> Vec<u8> {
    let mut payload = Vec::new();
    write_uvarint(&mut payload, n_frames as u64);
    write_uvarint(&mut payload, offsets.len() as u64);
    let mut prev = 0usize;
    for &off in offsets {
        write_uvarint(&mut payload, (off - prev) as u64);
        prev = off;
    }
    write_uvarint(&mut payload, epoch_starts.len() as u64);
    let mut prev = 0usize;
    for &s in epoch_starts {
        write_uvarint(&mut payload, (s - prev) as u64);
        prev = s;
    }
    let crc = crc32(&payload);
    let mut out = payload;
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&((out.len() - 4) as u64).to_le_bytes());
    out.push(FOOTER_VERSION_V2);
    out.extend_from_slice(&FOOTER_MAGIC);
    out
}

/// Report returned by [`recover_store`] and [`crate::StoreReader::recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverReport {
    /// Length of the valid archive prefix (position of the last durable
    /// footer's end).
    pub valid_len: usize,
    /// Garbage tail bytes past the last valid footer (0 when the archive
    /// was already cleanly closed).
    pub truncated_bytes: usize,
}

/// Finds the longest valid archive prefix of `data`: the strict parse if it
/// succeeds, otherwise the rightmost prefix ending in a fully CRC-valid
/// footer (the crash-recovery scan). Returns the prefix length and its
/// parsed index. Fails only when no valid footer exists at all (e.g. the
/// header itself is torn).
pub fn recover_slice(data: &[u8]) -> Result<(usize, ArchiveIndex)> {
    let strict_err = match ArchiveIndex::parse(data) {
        Ok(idx) => return Ok((data.len(), idx)),
        Err(e) => e,
    };
    let Ok(header) = parse_store_header(data) else {
        return Err(strict_err);
    };
    if header.version != VERSION_V2 {
        // Version 1 has no footers to scan for; the strict error stands.
        return Err(strict_err);
    }
    let min_end = header.body_start + FOOTER_TRAILER_LEN;
    let mut end = data.len().saturating_sub(1);
    while end >= min_end {
        if data[end - 4..end] == FOOTER_MAGIC {
            if let Ok(idx) = ArchiveIndex::parse(&data[..end]) {
                return Ok((end, idx));
            }
        }
        end -= 1;
    }
    Err(MdzError::Corrupt { what: "no valid footer found; archive is unrecoverable" })
}

/// Truncates `io` back to its last valid footer (no-op when the archive is
/// already cleanly closed). Errors when no valid footer exists.
pub fn recover_store(io: &mut dyn StoreIo) -> Result<RecoverReport> {
    let data = io.read_all()?;
    let (valid_len, _) = recover_slice(&data)?;
    let truncated_bytes = data.len() - valid_len;
    if truncated_bytes > 0 {
        io.truncate(valid_len as u64)?;
        io.sync()?;
    }
    Ok(RecoverReport { valid_len, truncated_bytes })
}

/// Summary returned by [`verify_archive`] for an intact archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Total frames indexed.
    pub n_frames: usize,
    /// Block records checked.
    pub n_blocks: usize,
    /// Epochs the archive divides into.
    pub n_epochs: usize,
    /// Archive length in bytes.
    pub archive_len: usize,
}

/// First integrity fault found by [`verify_archive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyFault {
    /// Byte offset of the corrupt region (0 when the header itself is bad;
    /// the valid-prefix length when only the tail is garbage).
    pub offset: usize,
    /// Human-readable description of the fault.
    pub what: String,
}

impl std::fmt::Display for VerifyFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt at byte {}: {}", self.offset, self.what)
    }
}

/// Walks every integrity check in the archive — header, footer CRC, and
/// each block record's FNV checksum — and reports the first corrupt offset.
/// Dead bytes *between* append generations (superseded footers) are legal
/// and not a fault; trailing bytes after the last valid footer are.
pub fn verify_archive(data: &[u8]) -> std::result::Result<VerifyReport, VerifyFault> {
    let idx = match ArchiveIndex::parse(data) {
        Ok(idx) => idx,
        Err(err) => {
            return Err(match recover_slice(data) {
                Ok((valid_len, _)) => VerifyFault {
                    offset: valid_len,
                    what: format!("trailing bytes after the last valid footer ({err})"),
                },
                Err(_) => VerifyFault { offset: 0, what: err.to_string() },
            })
        }
    };
    for b in &idx.blocks {
        if let Err(err) = record_at(data, b.offset) {
            return Err(VerifyFault { offset: b.offset, what: err.to_string() });
        }
    }
    Ok(VerifyReport {
        n_frames: idx.n_frames,
        n_blocks: idx.blocks.len(),
        n_epochs: idx.n_epochs(),
        archive_len: data.len(),
    })
}

fn compress_chunk(
    axes: &mut [Compressor; 3],
    chunk: &[Frame],
    precision: Precision,
) -> Result<[Vec<u8>; 3]> {
    let mut blocks: [Vec<u8>; 3] = Default::default();
    for (j, comp) in axes.iter_mut().enumerate() {
        fn pick(f: &Frame, axis: usize) -> &[f64] {
            match axis {
                0 => &f.x,
                1 => &f.y,
                _ => &f.z,
            }
        }
        blocks[j] = match precision {
            Precision::F64 => {
                let snaps: Vec<Vec<f64>> = chunk.iter().map(|f| pick(f, j).to_vec()).collect();
                comp.compress_buffer(&snaps)?
            }
            Precision::F32 => {
                let snaps: Vec<Vec<f32>> =
                    chunk.iter().map(|f| pick(f, j).iter().map(|&v| v as f32).collect()).collect();
                comp.compress_buffer_f32(&snaps)?
            }
        };
    }
    Ok(blocks)
}

struct StoreHeader {
    version: u8,
    f32_source: bool,
    n_atoms: usize,
    n_frames: usize,
    buffer_size: usize,
    epoch_interval: usize,
    elements: Vec<String>,
    comments: Vec<String>,
    /// Offset of the first block record.
    body_start: usize,
}

fn parse_store_header(data: &[u8]) -> Result<StoreHeader> {
    let magic = data.get(..4).ok_or(MdzError::BadHeader("truncated magic"))?;
    if magic != MAGIC {
        return Err(MdzError::BadHeader("not an MDZ archive"));
    }
    let version = *data.get(4).ok_or(MdzError::BadHeader("truncated version"))?;
    if version != 1 && version != VERSION_V2 {
        return Err(MdzError::BadHeader("unsupported archive version"));
    }
    let mut pos = 5;
    let mut f32_source = false;
    if version == VERSION_V2 {
        let flags = *data.get(5).ok_or(MdzError::BadHeader("truncated flags"))?;
        if flags & !STORE_FLAG_F32 != 0 {
            return Err(MdzError::BadHeader("unknown store flags"));
        }
        f32_source = flags & STORE_FLAG_F32 != 0;
        pos = 6;
    }
    let n_atoms = read_uvarint(data, &mut pos)? as usize;
    let n_frames = read_uvarint(data, &mut pos)? as usize;
    let buffer_size = read_uvarint(data, &mut pos)? as usize;
    let epoch_interval =
        if version == VERSION_V2 { read_uvarint(data, &mut pos)? as usize } else { 0 };
    if n_atoms == 0 || n_frames == 0 || buffer_size == 0 {
        return Err(MdzError::BadHeader("zero atom, frame, or buffer count"));
    }
    if version == VERSION_V2 && epoch_interval == 0 {
        return Err(MdzError::BadHeader("zero epoch interval"));
    }
    let meta_len = read_uvarint(data, &mut pos)? as usize;
    let meta_end = pos
        .checked_add(meta_len)
        .filter(|&e| e <= data.len())
        .ok_or(MdzError::BadHeader("truncated metadata"))?;
    // Bound the metadata expansion by a multiple of its compressed size so a
    // forged header cannot force a huge allocation before any checksum runs.
    let budget = meta_len.saturating_mul(64).clamp(1 << 12, 1 << 26);
    let mut meta = Vec::new();
    lz77::decompress_into_limited(
        &data[pos..meta_end],
        &mut meta,
        &StreamLimits::with_max_items(budget),
    )
    .map_err(|_| MdzError::BadHeader("metadata stream is corrupt"))?;
    let meta_text =
        String::from_utf8(meta).map_err(|_| MdzError::BadHeader("metadata is not UTF-8"))?;
    let mut meta_lines = meta_text.lines();
    let elements = meta_lines.next().unwrap_or("").split_whitespace().map(str::to_string).collect();
    let comments = meta_lines.map(str::to_string).collect();
    Ok(StoreHeader {
        version,
        f32_source,
        n_atoms,
        n_frames,
        buffer_size,
        epoch_interval,
        elements,
        comments,
        body_start: meta_end,
    })
}

/// Decoded footer state: block offsets plus (for version-2 footers) the
/// authoritative frame count and epoch anchor list.
struct FooterInfo {
    offsets: Vec<usize>,
    n_frames: usize,
    epoch_starts: Vec<usize>,
}

/// Locates, checksums, and decodes the footer at the end of `data`.
fn parse_footer(data: &[u8], header: &StoreHeader) -> Result<FooterInfo> {
    let len = data.len();
    let body_start = header.body_start;
    if len < body_start + FOOTER_TRAILER_LEN {
        return Err(MdzError::Corrupt { what: "archive too short for footer" });
    }
    if data[len - 4..] != FOOTER_MAGIC {
        return Err(MdzError::Corrupt { what: "footer magic missing" });
    }
    let footer_version = data[len - 5];
    if footer_version != FOOTER_VERSION && footer_version != FOOTER_VERSION_V2 {
        return Err(MdzError::Corrupt { what: "unsupported footer version" });
    }
    let payload_len = u64::from_le_bytes(data[len - 13..len - 5].try_into().unwrap()) as usize;
    let expected_crc = u32::from_le_bytes(data[len - 17..len - 13].try_into().unwrap());
    let payload_end = len - FOOTER_TRAILER_LEN;
    let payload_start = payload_end
        .checked_sub(payload_len)
        .filter(|&s| s >= body_start)
        .ok_or(MdzError::Corrupt { what: "footer length out of range" })?;
    let payload = &data[payload_start..payload_end];
    if crc32(payload) != expected_crc {
        return Err(MdzError::Corrupt { what: "footer checksum mismatch" });
    }
    let mut pos = 0;
    let n_frames = if footer_version == FOOTER_VERSION_V2 {
        let n = read_uvarint(payload, &mut pos)
            .map_err(|_| MdzError::Corrupt { what: "footer frame count is corrupt" })?
            as usize;
        // The header count is frozen at creation time; appends only grow it.
        if n < header.n_frames {
            return Err(MdzError::Corrupt { what: "footer frame count below header count" });
        }
        n
    } else {
        header.n_frames
    };
    let n_blocks = read_uvarint(payload, &mut pos)
        .map_err(|_| MdzError::Corrupt { what: "footer block count is corrupt" })?
        as usize;
    if n_blocks != n_frames.div_ceil(header.buffer_size) {
        return Err(MdzError::Corrupt { what: "footer block count disagrees with frame count" });
    }
    // Each delta is at least one payload byte, so the count is implicitly
    // bounded by the (already CRC-validated) payload size.
    if n_blocks > payload.len() {
        return Err(MdzError::Corrupt { what: "footer block count exceeds payload" });
    }
    let mut offsets = Vec::with_capacity(n_blocks);
    let mut prev = 0usize;
    for i in 0..n_blocks {
        let delta = read_uvarint(payload, &mut pos)
            .map_err(|_| MdzError::Corrupt { what: "footer offset is corrupt" })?
            as usize;
        if i > 0 && delta == 0 {
            return Err(MdzError::Corrupt { what: "footer offsets not increasing" });
        }
        let off = prev
            .checked_add(delta)
            .filter(|&o| o >= body_start && o < payload_start)
            .ok_or(MdzError::Corrupt { what: "footer offset out of range" })?;
        offsets.push(off);
        prev = off;
    }
    let epoch_starts = if footer_version == FOOTER_VERSION_V2 {
        let n_epochs = read_uvarint(payload, &mut pos)
            .map_err(|_| MdzError::Corrupt { what: "footer epoch count is corrupt" })?
            as usize;
        if n_epochs == 0 || n_epochs > n_blocks {
            return Err(MdzError::Corrupt { what: "footer epoch count out of range" });
        }
        let mut starts = Vec::with_capacity(n_epochs);
        let mut prev = 0usize;
        for i in 0..n_epochs {
            let delta = read_uvarint(payload, &mut pos)
                .map_err(|_| MdzError::Corrupt { what: "footer epoch start is corrupt" })?
                as usize;
            if i == 0 && delta != 0 {
                return Err(MdzError::Corrupt { what: "first epoch must start at block 0" });
            }
            if i > 0 && delta == 0 {
                return Err(MdzError::Corrupt { what: "footer epoch starts not increasing" });
            }
            let s = prev
                .checked_add(delta)
                .filter(|&s| s < n_blocks)
                .ok_or(MdzError::Corrupt { what: "footer epoch start out of range" })?;
            starts.push(s);
            prev = s;
        }
        starts
    } else {
        (0..n_blocks).step_by(header.epoch_interval.max(1)).collect()
    };
    if pos != payload.len() {
        return Err(MdzError::Corrupt { what: "footer payload has trailing bytes" });
    }
    Ok(FooterInfo { offsets, n_frames, epoch_starts })
}

/// Scans a version-1 body once, recording each record's start offset.
/// Checksums are deferred to decode time ([`record_at`]).
fn scan_v1_records(data: &[u8], body_start: usize, expected_blocks: usize) -> Result<Vec<usize>> {
    let mut offsets = Vec::new();
    let mut pos = body_start;
    while pos < data.len() && offsets.len() < expected_blocks {
        let start = pos;
        let len = read_uvarint(data, &mut pos)? as usize;
        let end = pos
            .checked_add(8)
            .and_then(|p| p.checked_add(len))
            .filter(|&e| e <= data.len())
            .ok_or(MdzError::Corrupt { what: "truncated v1 block record" })?;
        offsets.push(start);
        pos = end;
    }
    if offsets.len() != expected_blocks {
        return Err(MdzError::Corrupt { what: "v1 archive is missing blocks" });
    }
    Ok(offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdz_core::ErrorBound;

    fn frames(n_frames: usize, n_atoms: usize) -> Vec<Frame> {
        (0..n_frames)
            .map(|t| {
                let coord = |axis: usize| {
                    (0..n_atoms)
                        .map(|i| (i % 7) as f64 * 2.5 + t as f64 * 1e-3 + axis as f64)
                        .collect::<Vec<f64>>()
                };
                Frame::new(coord(0), coord(1), coord(2))
            })
            .collect()
    }

    fn opts() -> StoreOptions {
        let mut o = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
        o.buffer_size = 4;
        o.epoch_interval = 2;
        o
    }

    #[test]
    fn index_round_trips_header_fields() {
        let f = frames(19, 12);
        let data = write_store(&f, &["H".into(), "O".into()], &["c0".into()], &opts()).unwrap();
        let idx = ArchiveIndex::parse(&data).unwrap();
        assert_eq!(idx.version, VERSION_V2);
        assert_eq!(idx.n_atoms, 12);
        assert_eq!(idx.n_frames, 19);
        assert_eq!(idx.buffer_size, 4);
        assert_eq!(idx.epoch_interval, 2);
        assert_eq!(idx.blocks.len(), 5);
        assert_eq!(idx.n_epochs(), 3);
        assert_eq!(idx.epoch_starts, vec![0, 2, 4]);
        assert_eq!(idx.elements, vec!["H".to_string(), "O".to_string()]);
        assert_eq!(idx.comments, vec!["c0".to_string()]);
        // Last block holds the 3 tail frames.
        assert_eq!(idx.blocks[4].n_frames, 3);
        assert_eq!(idx.blocks[4].epoch, 2);
        // Every offset must point at a checksummed record.
        for b in &idx.blocks {
            record_at(&data, b.offset).unwrap();
        }
    }

    #[test]
    fn footer_corruption_is_detected() {
        let data = write_store(&frames(10, 6), &[], &[], &opts()).unwrap();
        // Flip one payload byte: CRC mismatch.
        let mut bad = data.clone();
        let n = bad.len();
        bad[n - FOOTER_TRAILER_LEN - 1] ^= 0xff;
        assert!(matches!(ArchiveIndex::parse(&bad), Err(MdzError::Corrupt { .. })));
        // Damage the magic.
        let mut bad = data.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x01;
        assert!(matches!(ArchiveIndex::parse(&bad), Err(MdzError::Corrupt { .. })));
        // Truncate the trailer.
        let short = &data[..data.len() - 3];
        assert!(ArchiveIndex::parse(short).is_err());
    }

    #[test]
    fn record_checksum_mismatch_is_detected() {
        let data = write_store(&frames(10, 6), &[], &[], &opts()).unwrap();
        let idx = ArchiveIndex::parse(&data).unwrap();
        let mut bad = data.clone();
        // Corrupt one byte inside the first block's container body.
        bad[idx.blocks[0].offset + 12] ^= 0x40;
        assert!(matches!(
            record_at(&bad, idx.blocks[0].offset),
            Err(MdzError::Corrupt { what: "block checksum mismatch" })
        ));
    }

    #[test]
    fn append_extends_index_and_preserves_prefix_bytes() {
        let base = write_store(&frames(8, 6), &[], &[], &opts()).unwrap();
        let mut io = MemIo::new(base.clone());
        let extra = frames(6, 6);
        let report = append_store(&mut io, &extra, &opts()).unwrap();
        assert_eq!(report.appended_frames, 6);
        assert_eq!(report.appended_blocks, 2);
        assert_eq!(report.recovered_bytes, 0);
        assert_eq!(report.n_frames, 14);
        let out = io.into_bytes();
        // Footer flip never rewrites published bytes: the base archive is a
        // byte-exact prefix of the appended one.
        assert_eq!(out[..base.len()], base[..]);
        let idx = ArchiveIndex::parse(&out).unwrap();
        assert_eq!(idx.n_frames, 14);
        assert_eq!(idx.blocks.len(), 4);
        // Base had epochs [0], appended segment anchors at block 2.
        assert_eq!(idx.epoch_starts, vec![0, 2]);
        assert_eq!(idx.blocks[3].epoch, 1);
        for b in &idx.blocks {
            record_at(&out, b.offset).unwrap();
        }
        assert!(verify_archive(&out).is_ok());
    }

    #[test]
    fn append_rejects_partial_tail_and_mismatches() {
        // 10 frames at buffer_size 4: partial last block.
        let partial = write_store(&frames(10, 6), &[], &[], &opts()).unwrap();
        let mut io = MemIo::new(partial);
        assert!(matches!(
            append_store(&mut io, &frames(4, 6), &opts()),
            Err(MdzError::BadInput(_))
        ));
        // Atom-count mismatch.
        let base = write_store(&frames(8, 6), &[], &[], &opts()).unwrap();
        let mut io = MemIo::new(base.clone());
        assert!(matches!(
            append_store(&mut io, &frames(4, 7), &opts()),
            Err(MdzError::BadInput(_))
        ));
        // Precision mismatch.
        let mut io = MemIo::new(base);
        let mut f32_opts = opts();
        f32_opts.precision = Precision::F32;
        assert!(matches!(
            append_store(&mut io, &frames(4, 6), &f32_opts),
            Err(MdzError::BadConfig(_))
        ));
    }

    #[test]
    fn recover_truncates_garbage_tail() {
        let data = write_store(&frames(8, 6), &[], &[], &opts()).unwrap();
        let mut dirty = data.clone();
        dirty.extend_from_slice(b"torn append garbage that never got a footer");
        assert!(ArchiveIndex::parse(&dirty).is_err());
        let (valid_len, idx) = recover_slice(&dirty).unwrap();
        assert_eq!(valid_len, data.len());
        assert_eq!(idx.n_frames, 8);
        let mut io = MemIo::new(dirty);
        let report = recover_store(&mut io).unwrap();
        assert_eq!(report.valid_len, data.len());
        assert_eq!(report.truncated_bytes, 43);
        assert_eq!(io.into_bytes(), data);
    }

    #[test]
    fn verify_reports_first_corrupt_offset() {
        let data = write_store(&frames(8, 6), &[], &[], &opts()).unwrap();
        let ok = verify_archive(&data).unwrap();
        assert_eq!(ok.n_frames, 8);
        assert_eq!(ok.n_blocks, 2);
        // Corrupt the second block body: footer still validates, so verify
        // must pinpoint the record.
        let idx = ArchiveIndex::parse(&data).unwrap();
        let mut bad = data.clone();
        bad[idx.blocks[1].offset + 12] ^= 0x40;
        let fault = verify_archive(&bad).unwrap_err();
        assert_eq!(fault.offset, idx.blocks[1].offset);
        // Garbage tail: fault at the valid-prefix boundary.
        let mut dirty = data.clone();
        dirty.extend_from_slice(&[0xAB; 9]);
        let fault = verify_archive(&dirty).unwrap_err();
        assert_eq!(fault.offset, data.len());
    }
}
