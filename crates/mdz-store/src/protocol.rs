//! Length-prefixed binary protocol spoken between `mdzd` and its clients.
//!
//! Every message — request or response — is framed as a `u32` little-endian
//! body length followed by the body. Request bodies start with an opcode
//! byte, response bodies with a status byte; all integers are `u64` LE.
//!
//! ```text
//! GET     request : op=1 · start u64 · end u64          (end-exclusive)
//! STATS   request : op=2
//! INFO    request : op=3
//! METRICS request : op=4
//! APPEND  request : op=5 · flags u8 (bit0: f32 payload) · n_frames u64
//!                   · n_atoms u64 · per frame: x[n_atoms] · y[n_atoms]
//!                   · z[n_atoms] (f64 LE each, or f32 LE when bit0 is set)
//!
//! OK GET     body : status=0 · start u64 · n_frames u64 · n_atoms u64
//!                   · per frame: x[n_atoms] f64 · y[n_atoms] f64 · z[n_atoms] f64
//! OK STATS   body : status=0 · requests · bytes_out · cache_hits
//!                   · cache_misses · decode_errors · buffers_decoded  (u64 each)
//! OK INFO    body : status=0 · version · n_atoms · n_frames
//!                   · buffer_size · epoch_interval · n_blocks         (u64 each)
//! OK METRICS body : status=0
//!                   · n_counters u32 · per: name_len u16 · name · value u64
//!                   · n_gauges   u32 · per: name_len u16 · name · value u64
//!                   · n_hists    u32 · per: name_len u16 · name · count u64
//!                     · sum f64 · min f64 · max f64 · p50 f64 · p99 f64
//! OK APPEND  body : status=0 · start u64 (first appended frame index)
//!                   · n_frames u64 (total after append) · appended_blocks u64
//! error      body : status≠0 · UTF-8 message (to end of body)
//! ```
//!
//! METRICS is a purely additive verb: version-1 servers answer it with
//! `BadRequest` and version-1 clients simply never send it, so mixed
//! deployments keep working. The BUSY status (load shedding at the
//! connection cap) and the APPEND verb (answered with `BadRequest` by a
//! read-only server) are additive the same way.
//!
//! An OK APPEND response is a durability acknowledgment: the server replies
//! only after the footer-flip append protocol has completed — new blocks
//! synced, then the fresh footer synced — so an acknowledged frame survives
//! a server crash (see `FORMAT.md` §1.2).
//!
//! Both endpoints bound what they will read: servers cap request bodies at
//! [`MAX_REQUEST_BODY`] ([`MAX_APPEND_BODY`] when live appends are
//! enabled), clients cap response bodies at a configurable budget — a
//! hostile peer cannot force either side into an unbounded allocation.

use std::io::{self, Read, Write};

use mdz_core::{Frame, MdzError};
use mdz_obs::{HistogramSnapshot, MetricsSnapshot};

use crate::archive::Precision;
use crate::reader::StatsSnapshot;

/// Largest request body a server will read for the control verbs
/// (GET/STATS/INFO/METRICS). Those requests are tiny and fixed shape;
/// anything larger is hostile or a framing bug.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{Request, MAX_REQUEST_BODY};
///
/// let body = Request::Get { start: 0, end: 100 }.encode();
/// assert!(body.len() <= MAX_REQUEST_BODY);
/// ```
pub const MAX_REQUEST_BODY: usize = 64;

/// Default budget for APPEND request bodies on a live server (64 MiB —
/// roughly 900k atoms × 128 frames of f64 coordinates per request).
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{MAX_APPEND_BODY, MAX_REQUEST_BODY};
///
/// assert!(MAX_APPEND_BODY > MAX_REQUEST_BODY);
/// ```
pub const MAX_APPEND_BODY: usize = 1 << 26;

/// Opcode for a frame-range read.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{Request, OP_GET};
///
/// assert_eq!(Request::Get { start: 0, end: 1 }.encode()[0], OP_GET);
/// ```
pub const OP_GET: u8 = 1;
/// Opcode for a counters snapshot.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{Request, OP_STATS};
///
/// assert_eq!(Request::Stats.encode()[0], OP_STATS);
/// ```
pub const OP_STATS: u8 = 2;
/// Opcode for archive metadata.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{Request, OP_INFO};
///
/// assert_eq!(Request::Info.encode()[0], OP_INFO);
/// ```
pub const OP_INFO: u8 = 3;
/// Opcode for a full metrics snapshot (counters, gauges, histograms).
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{Request, OP_METRICS};
///
/// assert_eq!(Request::Metrics.encode()[0], OP_METRICS);
/// ```
pub const OP_METRICS: u8 = 4;
/// Opcode for a live append of raw frames.
///
/// # Examples
///
/// ```
/// use mdz_core::Frame;
/// use mdz_store::protocol::{Request, OP_APPEND};
/// use mdz_store::Precision;
///
/// let frames = vec![Frame::new(vec![1.0], vec![2.0], vec![3.0])];
/// let body = Request::Append { precision: Precision::F64, frames }.encode();
/// assert_eq!(body[0], OP_APPEND);
/// ```
pub const OP_APPEND: u8 = 5;

/// Flag bit in an APPEND request: coordinates are packed as `f32` LE.
///
/// # Examples
///
/// ```
/// use mdz_core::Frame;
/// use mdz_store::protocol::{Request, APPEND_FLAG_F32};
/// use mdz_store::Precision;
///
/// let frames = vec![Frame::new(vec![1.0], vec![2.0], vec![3.0])];
/// let body = Request::Append { precision: Precision::F32, frames }.encode();
/// assert_eq!(body[1] & APPEND_FLAG_F32, APPEND_FLAG_F32);
/// ```
pub const APPEND_FLAG_F32: u8 = 0b0000_0001;

/// Response status codes.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::Status;
///
/// assert_eq!(Status::from_byte(Status::Busy as u8), Some(Status::Busy));
/// assert_eq!(Status::from_byte(200), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The request succeeded; the payload follows.
    Ok = 0,
    /// The request was malformed (unknown opcode, short body, bad frame).
    BadRequest = 1,
    /// The requested frame range lies outside the archive.
    OutOfRange = 2,
    /// Serving the request would exceed a server-side budget.
    LimitExceeded = 3,
    /// The archive bytes failed validation while decoding.
    Corrupt = 4,
    /// An unexpected server-side failure.
    Internal = 5,
    /// The server is at its connection cap and shed this connection; the
    /// request (if any) was not processed and may be retried elsewhere or
    /// after a backoff. Additive like METRICS: version-1 servers never send
    /// it, and older clients surface it as a protocol error.
    Busy = 6,
}

impl Status {
    /// Decodes a wire status byte.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdz_store::protocol::Status;
    ///
    /// assert_eq!(Status::from_byte(0), Some(Status::Ok));
    /// assert_eq!(Status::from_byte(6), Some(Status::Busy));
    /// assert_eq!(Status::from_byte(99), None);
    /// ```
    pub fn from_byte(b: u8) -> Option<Status> {
        Some(match b {
            0 => Status::Ok,
            1 => Status::BadRequest,
            2 => Status::OutOfRange,
            3 => Status::LimitExceeded,
            4 => Status::Corrupt,
            5 => Status::Internal,
            6 => Status::Busy,
            _ => return None,
        })
    }

    /// Maps a decode-path error onto the wire status vocabulary.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdz_core::MdzError;
    /// use mdz_store::protocol::Status;
    ///
    /// let err = MdzError::BadInput("frame range out of bounds");
    /// assert_eq!(Status::from_error(&err), Status::OutOfRange);
    /// ```
    pub fn from_error(e: &MdzError) -> Status {
        match e {
            MdzError::BadInput(_) => Status::OutOfRange,
            MdzError::LimitExceeded { .. } => Status::LimitExceeded,
            MdzError::Corrupt { .. } | MdzError::BadHeader(_) | MdzError::Stream(_) => {
                Status::Corrupt
            }
            _ => Status::Internal,
        }
    }
}

/// A parsed client request.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::Request;
///
/// let req = Request::Get { start: 3, end: 9 };
/// assert_eq!(Request::parse(&req.encode()).unwrap(), req);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Read frames `start..end` (end-exclusive).
    Get {
        /// First frame index.
        start: u64,
        /// One past the last frame index.
        end: u64,
    },
    /// Snapshot the server's counters.
    Stats,
    /// Describe the served archive.
    Info,
    /// Snapshot every metric the server's registry has recorded.
    Metrics,
    /// Append raw frames to the served archive (live servers only).
    Append {
        /// Wire precision of the coordinate payload. `F32` halves the
        /// request size; the server must have been opened at the matching
        /// store precision.
        precision: Precision,
        /// The frames to compress and append, in order.
        frames: Vec<Frame>,
    },
}

impl Request {
    /// Encodes the request body (unframed).
    ///
    /// # Examples
    ///
    /// ```
    /// use mdz_store::protocol::{Request, OP_STATS};
    ///
    /// assert_eq!(Request::Stats.encode(), vec![OP_STATS]);
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Get { start, end } => {
                let mut body = Vec::with_capacity(17);
                body.push(OP_GET);
                body.extend_from_slice(&start.to_le_bytes());
                body.extend_from_slice(&end.to_le_bytes());
                body
            }
            Request::Stats => vec![OP_STATS],
            Request::Info => vec![OP_INFO],
            Request::Metrics => vec![OP_METRICS],
            Request::Append { precision, frames } => {
                let n_atoms = frames.first().map_or(0, Frame::len);
                let width = match precision {
                    Precision::F64 => 8,
                    Precision::F32 => 4,
                };
                let mut body = Vec::with_capacity(18 + frames.len() * n_atoms * 3 * width);
                body.push(OP_APPEND);
                body.push(match precision {
                    Precision::F64 => 0,
                    Precision::F32 => APPEND_FLAG_F32,
                });
                body.extend_from_slice(&(frames.len() as u64).to_le_bytes());
                body.extend_from_slice(&(n_atoms as u64).to_le_bytes());
                for f in frames {
                    for axis in [&f.x, &f.y, &f.z] {
                        for &v in axis.iter() {
                            match precision {
                                Precision::F64 => body.extend_from_slice(&v.to_le_bytes()),
                                Precision::F32 => body.extend_from_slice(&(v as f32).to_le_bytes()),
                            }
                        }
                    }
                }
                body
            }
        }
    }

    /// Parses a request body.
    ///
    /// The body length is validated against the counts it claims before any
    /// frame is allocated, so a forged header cannot force an oversized
    /// allocation.
    ///
    /// # Examples
    ///
    /// ```
    /// use mdz_core::Frame;
    /// use mdz_store::protocol::Request;
    /// use mdz_store::Precision;
    ///
    /// let req = Request::Append {
    ///     precision: Precision::F64,
    ///     frames: vec![Frame::new(vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0])],
    /// };
    /// assert_eq!(Request::parse(&req.encode()).unwrap(), req);
    /// assert!(Request::parse(&[99]).is_err());
    /// ```
    pub fn parse(body: &[u8]) -> std::result::Result<Request, &'static str> {
        match body.first() {
            Some(&OP_GET) => {
                if body.len() != 17 {
                    return Err("GET body must be 17 bytes");
                }
                let start = u64::from_le_bytes(body[1..9].try_into().unwrap());
                let end = u64::from_le_bytes(body[9..17].try_into().unwrap());
                Ok(Request::Get { start, end })
            }
            Some(&OP_STATS) if body.len() == 1 => Ok(Request::Stats),
            Some(&OP_INFO) if body.len() == 1 => Ok(Request::Info),
            Some(&OP_METRICS) if body.len() == 1 => Ok(Request::Metrics),
            Some(&OP_APPEND) => parse_append(body),
            Some(_) => Err("unknown opcode or trailing bytes"),
            None => Err("empty request body"),
        }
    }
}

/// Parses an APPEND request body (opcode byte included).
fn parse_append(body: &[u8]) -> std::result::Result<Request, &'static str> {
    if body.len() < 18 {
        return Err("short APPEND body");
    }
    let flags = body[1];
    if flags & !APPEND_FLAG_F32 != 0 {
        return Err("unknown APPEND flags");
    }
    let precision = if flags & APPEND_FLAG_F32 != 0 { Precision::F32 } else { Precision::F64 };
    let width: usize = match precision {
        Precision::F64 => 8,
        Precision::F32 => 4,
    };
    let n_frames = u64::from_le_bytes(body[2..10].try_into().unwrap()) as usize;
    let n_atoms = u64::from_le_bytes(body[10..18].try_into().unwrap()) as usize;
    if n_frames == 0 || n_atoms == 0 {
        return Err("APPEND carries no frames");
    }
    let expect = n_frames
        .checked_mul(n_atoms)
        .and_then(|v| v.checked_mul(3 * width))
        .and_then(|v| v.checked_add(18))
        .ok_or("APPEND payload size overflows")?;
    if body.len() != expect {
        return Err("APPEND body length disagrees with its header");
    }
    let mut pos = 18;
    let mut frames = Vec::with_capacity(n_frames);
    for _ in 0..n_frames {
        let mut axes: [Vec<f64>; 3] = Default::default();
        for axis in axes.iter_mut() {
            axis.reserve_exact(n_atoms);
            for _ in 0..n_atoms {
                let v = match precision {
                    Precision::F64 => f64::from_le_bytes(body[pos..pos + 8].try_into().unwrap()),
                    Precision::F32 => {
                        f64::from(f32::from_le_bytes(body[pos..pos + 4].try_into().unwrap()))
                    }
                };
                axis.push(v);
                pos += width;
            }
        }
        let [x, y, z] = axes;
        frames.push(Frame::new(x, y, z));
    }
    Ok(Request::Append { precision, frames })
}

/// Archive metadata reported by an INFO response.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{encode_info, parse_info, StoreInfo};
///
/// let info = StoreInfo {
///     version: 2,
///     n_atoms: 10,
///     n_frames: 1000,
///     buffer_size: 128,
///     epoch_interval: 8,
///     n_blocks: 8,
/// };
/// assert_eq!(parse_info(&encode_info(&info)).unwrap(), info);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreInfo {
    /// Container version (1 or 2).
    pub version: u64,
    /// Atoms per frame.
    pub n_atoms: u64,
    /// Total frames.
    pub n_frames: u64,
    /// Frames per buffer.
    pub buffer_size: u64,
    /// Buffers per epoch.
    pub epoch_interval: u64,
    /// Block (buffer) count.
    pub n_blocks: u64,
}

/// Durability acknowledgment returned by an OK APPEND response.
///
/// Receiving one means the appended frames are on disk under a synced
/// footer: a server crash after the acknowledgment cannot lose them.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{encode_append_ack, parse_append_ack, AppendAck};
///
/// let ack = AppendAck { start: 128, n_frames: 256, appended_blocks: 1 };
/// assert_eq!(parse_append_ack(&encode_append_ack(&ack)).unwrap(), ack);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendAck {
    /// Index of the first frame this append added.
    pub start: u64,
    /// Total frames in the archive after the append.
    pub n_frames: u64,
    /// Block records this append added.
    pub appended_blocks: u64,
}

/// Builds an error response body.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{encode_error, Status};
///
/// let body = encode_error(Status::OutOfRange, "no such frame");
/// assert_eq!(body[0], Status::OutOfRange as u8);
/// assert_eq!(&body[1..], b"no such frame");
/// ```
pub fn encode_error(status: Status, message: &str) -> Vec<u8> {
    let mut body = Vec::with_capacity(1 + message.len());
    body.push(status as u8);
    body.extend_from_slice(message.as_bytes());
    body
}

/// Builds an OK GET response body from decoded frames.
///
/// # Examples
///
/// ```
/// use mdz_core::Frame;
/// use mdz_store::protocol::{encode_frames, parse_frames};
///
/// let frames = vec![Frame::new(vec![1.0], vec![2.0], vec![3.0])];
/// let (start, back) = parse_frames(&encode_frames(7, 1, &frames)).unwrap();
/// assert_eq!((start, back), (7, frames));
/// ```
pub fn encode_frames(start: u64, n_atoms: usize, frames: &[Frame]) -> Vec<u8> {
    let mut body = Vec::with_capacity(25 + frames.len() * n_atoms * 24);
    body.push(Status::Ok as u8);
    body.extend_from_slice(&start.to_le_bytes());
    body.extend_from_slice(&(frames.len() as u64).to_le_bytes());
    body.extend_from_slice(&(n_atoms as u64).to_le_bytes());
    for f in frames {
        for axis in [&f.x, &f.y, &f.z] {
            for v in axis.iter() {
                body.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    body
}

/// Parses an OK GET response body (status byte already consumed is NOT
/// assumed: `body` includes it). Returns `(start, frames)`.
///
/// # Examples
///
/// ```
/// use mdz_core::Frame;
/// use mdz_store::protocol::{encode_frames, parse_frames};
///
/// let frames = vec![Frame::new(vec![1.5, 2.5], vec![0.0, 1.0], vec![9.0, 8.0])];
/// let body = encode_frames(0, 2, &frames);
/// assert_eq!(parse_frames(&body).unwrap().1, frames);
/// assert!(parse_frames(&body[..body.len() - 1]).is_err());
/// ```
pub fn parse_frames(body: &[u8]) -> std::result::Result<(u64, Vec<Frame>), &'static str> {
    if body.len() < 25 || body[0] != Status::Ok as u8 {
        return Err("short or non-OK GET body");
    }
    let start = u64::from_le_bytes(body[1..9].try_into().unwrap());
    let n_frames = u64::from_le_bytes(body[9..17].try_into().unwrap()) as usize;
    let n_atoms = u64::from_le_bytes(body[17..25].try_into().unwrap()) as usize;
    let expect = n_frames
        .checked_mul(n_atoms)
        .and_then(|v| v.checked_mul(24))
        .and_then(|v| v.checked_add(25))
        .ok_or("frame payload size overflows")?;
    if body.len() != expect {
        return Err("GET body length disagrees with its header");
    }
    let mut pos = 25;
    let mut frames = Vec::with_capacity(n_frames);
    for _ in 0..n_frames {
        let mut axes: [Vec<f64>; 3] = Default::default();
        for axis in axes.iter_mut() {
            axis.reserve_exact(n_atoms);
            for _ in 0..n_atoms {
                axis.push(f64::from_le_bytes(body[pos..pos + 8].try_into().unwrap()));
                pos += 8;
            }
        }
        let [x, y, z] = axes;
        frames.push(Frame::new(x, y, z));
    }
    Ok((start, frames))
}

/// Builds an OK STATS response body.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{encode_stats, parse_stats};
/// use mdz_store::StatsSnapshot;
///
/// let stats = StatsSnapshot { requests: 4, ..Default::default() };
/// assert_eq!(parse_stats(&encode_stats(&stats)).unwrap(), stats);
/// ```
pub fn encode_stats(s: &StatsSnapshot) -> Vec<u8> {
    let mut body = Vec::with_capacity(49);
    body.push(Status::Ok as u8);
    for v in
        [s.requests, s.bytes_out, s.cache_hits, s.cache_misses, s.decode_errors, s.buffers_decoded]
    {
        body.extend_from_slice(&v.to_le_bytes());
    }
    body
}

/// Parses an OK STATS response body.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{encode_stats, parse_stats};
/// use mdz_store::StatsSnapshot;
///
/// let stats = StatsSnapshot { cache_hits: 2, cache_misses: 1, ..Default::default() };
/// let body = encode_stats(&stats);
/// assert_eq!(parse_stats(&body).unwrap(), stats);
/// assert!(parse_stats(&body[..10]).is_err());
/// ```
pub fn parse_stats(body: &[u8]) -> std::result::Result<StatsSnapshot, &'static str> {
    if body.len() != 49 || body[0] != Status::Ok as u8 {
        return Err("short or non-OK STATS body");
    }
    let at = |i: usize| u64::from_le_bytes(body[1 + i * 8..9 + i * 8].try_into().unwrap());
    Ok(StatsSnapshot {
        requests: at(0),
        bytes_out: at(1),
        cache_hits: at(2),
        cache_misses: at(3),
        decode_errors: at(4),
        buffers_decoded: at(5),
    })
}

/// Builds an OK INFO response body.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{encode_info, Status, StoreInfo};
///
/// let info = StoreInfo {
///     version: 2,
///     n_atoms: 3,
///     n_frames: 12,
///     buffer_size: 4,
///     epoch_interval: 2,
///     n_blocks: 3,
/// };
/// assert_eq!(encode_info(&info)[0], Status::Ok as u8);
/// ```
pub fn encode_info(i: &StoreInfo) -> Vec<u8> {
    let mut body = Vec::with_capacity(49);
    body.push(Status::Ok as u8);
    for v in [i.version, i.n_atoms, i.n_frames, i.buffer_size, i.epoch_interval, i.n_blocks] {
        body.extend_from_slice(&v.to_le_bytes());
    }
    body
}

/// Parses an OK INFO response body.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{encode_info, parse_info, StoreInfo};
///
/// let info = StoreInfo {
///     version: 2,
///     n_atoms: 3,
///     n_frames: 12,
///     buffer_size: 4,
///     epoch_interval: 2,
///     n_blocks: 3,
/// };
/// assert_eq!(parse_info(&encode_info(&info)).unwrap(), info);
/// assert!(parse_info(&[0u8; 10]).is_err());
/// ```
pub fn parse_info(body: &[u8]) -> std::result::Result<StoreInfo, &'static str> {
    if body.len() != 49 || body[0] != Status::Ok as u8 {
        return Err("short or non-OK INFO body");
    }
    let at = |i: usize| u64::from_le_bytes(body[1 + i * 8..9 + i * 8].try_into().unwrap());
    Ok(StoreInfo {
        version: at(0),
        n_atoms: at(1),
        n_frames: at(2),
        buffer_size: at(3),
        epoch_interval: at(4),
        n_blocks: at(5),
    })
}

/// Builds an OK APPEND response body (the durability acknowledgment).
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{encode_append_ack, AppendAck, Status};
///
/// let body = encode_append_ack(&AppendAck { start: 8, n_frames: 16, appended_blocks: 2 });
/// assert_eq!(body[0], Status::Ok as u8);
/// assert_eq!(body.len(), 25);
/// ```
pub fn encode_append_ack(ack: &AppendAck) -> Vec<u8> {
    let mut body = Vec::with_capacity(25);
    body.push(Status::Ok as u8);
    for v in [ack.start, ack.n_frames, ack.appended_blocks] {
        body.extend_from_slice(&v.to_le_bytes());
    }
    body
}

/// Parses an OK APPEND response body.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{encode_append_ack, parse_append_ack, AppendAck};
///
/// let ack = AppendAck { start: 0, n_frames: 8, appended_blocks: 2 };
/// let body = encode_append_ack(&ack);
/// assert_eq!(parse_append_ack(&body).unwrap(), ack);
/// assert!(parse_append_ack(&body[..24]).is_err());
/// ```
pub fn parse_append_ack(body: &[u8]) -> std::result::Result<AppendAck, &'static str> {
    if body.len() != 25 || body[0] != Status::Ok as u8 {
        return Err("short or non-OK APPEND body");
    }
    let at = |i: usize| u64::from_le_bytes(body[1 + i * 8..9 + i * 8].try_into().unwrap());
    Ok(AppendAck { start: at(0), n_frames: at(1), appended_blocks: at(2) })
}

/// Builds an OK METRICS response body from a registry snapshot.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{encode_metrics, parse_metrics};
/// use mdz_store::MetricsSnapshot;
///
/// let snap = MetricsSnapshot {
///     counters: vec![("store.requests".into(), 7)],
///     ..Default::default()
/// };
/// assert_eq!(parse_metrics(&encode_metrics(&snap)).unwrap(), snap);
/// ```
pub fn encode_metrics(m: &MetricsSnapshot) -> Vec<u8> {
    fn put_name(body: &mut Vec<u8>, name: &str) {
        // Metric names are short static strings; u16 is generous.
        let len = name.len().min(u16::MAX as usize);
        body.extend_from_slice(&(len as u16).to_le_bytes());
        body.extend_from_slice(&name.as_bytes()[..len]);
    }
    let mut body = vec![Status::Ok as u8];
    for family in [&m.counters, &m.gauges] {
        body.extend_from_slice(&(family.len() as u32).to_le_bytes());
        for (name, value) in family {
            put_name(&mut body, name);
            body.extend_from_slice(&value.to_le_bytes());
        }
    }
    body.extend_from_slice(&(m.histograms.len() as u32).to_le_bytes());
    for h in &m.histograms {
        put_name(&mut body, &h.name);
        body.extend_from_slice(&h.count.to_le_bytes());
        for v in [h.sum, h.min, h.max, h.p50, h.p99] {
            body.extend_from_slice(&v.to_le_bytes());
        }
    }
    body
}

/// Parses an OK METRICS response body.
///
/// Every length is validated against the remaining bytes before any
/// allocation, so a hostile body cannot claim more entries than it carries.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{encode_metrics, parse_metrics};
/// use mdz_store::MetricsSnapshot;
///
/// let body = encode_metrics(&MetricsSnapshot::default());
/// assert_eq!(parse_metrics(&body).unwrap(), MetricsSnapshot::default());
/// assert!(parse_metrics(&[]).is_err());
/// ```
pub fn parse_metrics(body: &[u8]) -> std::result::Result<MetricsSnapshot, &'static str> {
    if body.is_empty() || body[0] != Status::Ok as u8 {
        return Err("short or non-OK METRICS body");
    }
    let mut pos = 1usize;
    let take = |pos: &mut usize, n: usize| -> std::result::Result<&[u8], &'static str> {
        let slice = body.get(*pos..*pos + n).ok_or("truncated METRICS body")?;
        *pos += n;
        Ok(slice)
    };
    let take_u32 = |pos: &mut usize| -> std::result::Result<usize, &'static str> {
        Ok(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()) as usize)
    };
    let take_u64 = |pos: &mut usize| -> std::result::Result<u64, &'static str> {
        Ok(u64::from_le_bytes(take(pos, 8)?.try_into().unwrap()))
    };
    let take_f64 = |pos: &mut usize| -> std::result::Result<f64, &'static str> {
        Ok(f64::from_le_bytes(take(pos, 8)?.try_into().unwrap()))
    };
    let take_name = |pos: &mut usize| -> std::result::Result<String, &'static str> {
        let len = u16::from_le_bytes(take(pos, 2)?.try_into().unwrap()) as usize;
        let raw = take(pos, len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| "metric name is not UTF-8")
    };
    let take_pairs = |pos: &mut usize| -> std::result::Result<Vec<(String, u64)>, &'static str> {
        let n = take_u32(pos)?;
        // Each entry needs at least 10 bytes; reject forged counts early.
        if n > (body.len() - *pos) / 10 {
            return Err("METRICS entry count disagrees with body length");
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let name = take_name(pos)?;
            out.push((name, take_u64(pos)?));
        }
        Ok(out)
    };
    let counters = take_pairs(&mut pos)?;
    let gauges = take_pairs(&mut pos)?;
    let n_hist = take_u32(&mut pos)?;
    if n_hist > (body.len() - pos) / 50 {
        return Err("METRICS entry count disagrees with body length");
    }
    let mut histograms = Vec::with_capacity(n_hist);
    for _ in 0..n_hist {
        let name = take_name(&mut pos)?;
        let count = take_u64(&mut pos)?;
        let (sum, min) = (take_f64(&mut pos)?, take_f64(&mut pos)?);
        let (max, p50, p99) = (take_f64(&mut pos)?, take_f64(&mut pos)?, take_f64(&mut pos)?);
        histograms.push(HistogramSnapshot { name, count, sum, min, max, p50, p99 });
    }
    if pos != body.len() {
        return Err("METRICS body has trailing bytes");
    }
    Ok(MetricsSnapshot { counters, gauges, histograms })
}

/// Writes one framed message.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::write_message;
///
/// let mut buf = Vec::new();
/// write_message(&mut buf, &[1, 2, 3]).unwrap();
/// assert_eq!(buf, vec![3, 0, 0, 0, 1, 2, 3]);
/// ```
pub fn write_message(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one framed message, refusing bodies larger than `max_body`.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary (the peer closed the
/// connection between messages).
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::{read_message, write_message};
///
/// let mut buf = Vec::new();
/// write_message(&mut buf, &[1, 2, 3]).unwrap();
/// let mut r = buf.as_slice();
/// assert_eq!(read_message(&mut r, 8).unwrap(), Some(vec![1, 2, 3]));
/// assert_eq!(read_message(&mut r, 8).unwrap(), None); // clean EOF
/// assert!(read_message(&mut buf.as_slice(), 2).is_err()); // over budget
/// ```
pub fn read_message(r: &mut impl Read, max_body: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated frame length"))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_body {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_body}-byte budget"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// A violation of the framing layer an incremental decoder cannot recover
/// from (the stream offset of the next frame is unknowable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The 4-byte prefix announced a body larger than the decoder's budget.
    /// Raised *before* any allocation for the announced body.
    Oversized {
        /// The body length the prefix announced.
        announced: usize,
        /// The budget the decoder was constructed with.
        budget: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { announced, budget } => {
                write!(f, "frame of {announced} bytes exceeds the {budget}-byte budget")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental decoder for the length-prefixed framing, for non-blocking
/// readers that receive the stream in arbitrary chunks.
///
/// [`push`](Self::push) appends whatever bytes arrived;
/// [`next_frame`](Self::next_frame) pops complete bodies in order, returning
/// `Ok(None)` while the tail is still partial. The decoder only ever
/// allocates for bytes actually received: an oversized length prefix is
/// rejected from the four prefix bytes alone, before any buffer for the
/// announced body exists. Framing errors are sticky — the stream cannot be
/// resynchronized past a bad prefix, so every later call repeats the error.
///
/// # Examples
///
/// ```
/// use mdz_store::protocol::FrameDecoder;
///
/// let mut dec = FrameDecoder::new(64);
/// // Two frames coalesced into one chunk, the second cut mid-body.
/// dec.push(&[2, 0, 0, 0, 10, 11, 3, 0, 0, 0, 20]);
/// assert_eq!(dec.next_frame().unwrap(), Some(vec![10, 11]));
/// assert_eq!(dec.next_frame().unwrap(), None); // second frame incomplete
/// dec.push(&[21, 22]); // trickle in the rest
/// assert_eq!(dec.next_frame().unwrap(), Some(vec![20, 21, 22]));
/// assert!(!dec.has_partial());
/// ```
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    max_body: usize,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// Creates a decoder refusing bodies larger than `max_body`.
    pub fn new(max_body: usize) -> Self {
        Self { buf: Vec::new(), pos: 0, max_body, poisoned: None }
    }

    /// Appends bytes received off the wire. Cheap to call with any chunk
    /// size down to a single byte.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame body, `Ok(None)` if the buffered tail
    /// is still mid-frame (or empty).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(err) = self.poisoned {
            return Err(err);
        }
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let prefix = &self.buf[self.pos..self.pos + 4];
        let len = u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]) as usize;
        if len > self.max_body {
            let err = FrameError::Oversized { announced: len, budget: self.max_body };
            self.poisoned = Some(err);
            return Err(err);
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let body = self.buf[self.pos + 4..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        self.compact();
        Ok(Some(body))
    }

    /// Bytes received but not yet consumed by a popped frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether a frame has started arriving but is not complete yet (drives
    /// the server's read deadline: a partial frame that stalls is cut off).
    pub fn has_partial(&self) -> bool {
        self.poisoned.is_none() && self.buffered() > 0
    }

    /// Drops the consumed prefix once it dominates the buffer, keeping the
    /// resident size proportional to unconsumed bytes.
    fn compact(&mut self) {
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in
            [Request::Get { start: 3, end: 999 }, Request::Stats, Request::Info, Request::Metrics]
        {
            assert_eq!(Request::parse(&req.encode()).unwrap(), req);
        }
        assert!(Request::parse(&[]).is_err());
        assert!(Request::parse(&[OP_GET, 1, 2]).is_err());
        assert!(Request::parse(&[OP_STATS, 0]).is_err());
        assert!(Request::parse(&[OP_METRICS, 0]).is_err());
        assert!(Request::parse(&[99]).is_err());
    }

    #[test]
    fn append_requests_round_trip_both_precisions() {
        let frames = vec![
            Frame::new(vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]),
            Frame::new(vec![-1.5, 0.25], vec![0.0, 9.0], vec![7.0, 8.0]),
        ];
        let f64_req = Request::Append { precision: Precision::F64, frames: frames.clone() };
        assert_eq!(Request::parse(&f64_req.encode()).unwrap(), f64_req);
        // f32 wire precision narrows each coordinate once (these values are
        // exactly representable, so the round trip is exact here).
        let f32_req = Request::Append { precision: Precision::F32, frames };
        assert_eq!(Request::parse(&f32_req.encode()).unwrap(), f32_req);
        let f32_body = f32_req.encode();
        let f64_body = f64_req.encode();
        assert_eq!(f64_body.len() - 18, 2 * (f32_body.len() - 18));
    }

    #[test]
    fn append_request_rejects_forged_and_short_bodies() {
        let frames = vec![Frame::new(vec![1.0], vec![2.0], vec![3.0])];
        let body = Request::Append { precision: Precision::F64, frames }.encode();
        // Truncation and inflation both break the exact-length contract.
        assert!(Request::parse(&body[..body.len() - 1]).is_err());
        let mut long = body.clone();
        long.push(0);
        assert!(Request::parse(&long).is_err());
        // Forged frame count: claims more frames than the body carries.
        let mut forged = body.clone();
        forged[2] = 0xFF;
        assert!(Request::parse(&forged).is_err());
        // Unknown flag bits are reserved.
        let mut flagged = body.clone();
        flagged[1] |= 0b1000_0000;
        assert!(Request::parse(&flagged).is_err());
        // Zero frames or atoms is meaningless.
        assert!(Request::parse(&[OP_APPEND, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0])
            .is_err());
        assert!(Request::parse(&body[..10]).is_err());
    }

    #[test]
    fn append_ack_round_trips() {
        let ack = AppendAck { start: 128, n_frames: 192, appended_blocks: 4 };
        let body = encode_append_ack(&ack);
        assert_eq!(body.len(), 25);
        assert_eq!(parse_append_ack(&body).unwrap(), ack);
        assert!(parse_append_ack(&body[..24]).is_err());
        let mut bad = body.clone();
        bad[0] = Status::Internal as u8;
        assert!(parse_append_ack(&bad).is_err());
    }

    #[test]
    fn metrics_round_trip() {
        let m = MetricsSnapshot {
            counters: vec![("store.requests".into(), 7), ("server.requests.get".into(), 3)],
            gauges: vec![("core.parallel.queue_depth".into(), 12)],
            histograms: vec![HistogramSnapshot {
                name: "server.request_seconds".into(),
                count: 7,
                sum: 0.42,
                min: 0.01,
                max: 0.2,
                p50: 0.05,
                p99: 0.19,
            }],
        };
        let body = encode_metrics(&m);
        assert_eq!(parse_metrics(&body).unwrap(), m);
        // An empty snapshot round-trips too.
        let empty = MetricsSnapshot::default();
        assert_eq!(parse_metrics(&encode_metrics(&empty)).unwrap(), empty);
        // Truncations, forged counts, and trailing bytes are rejected.
        for cut in [0, 1, 5, body.len() - 1] {
            assert!(parse_metrics(&body[..cut]).is_err(), "cut at {cut}");
        }
        let mut forged = body.clone();
        forged[1] = 0xFF; // counter count low byte
        assert!(parse_metrics(&forged).is_err());
        let mut long = body;
        long.push(0);
        assert!(parse_metrics(&long).is_err());
    }

    #[test]
    fn frame_payload_round_trips() {
        let frames = vec![
            Frame::new(vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]),
            Frame::new(vec![-1.5, 0.25], vec![0.0, 9.0], vec![7.0, 8.0]),
        ];
        let body = encode_frames(42, 2, &frames);
        let (start, back) = parse_frames(&body).unwrap();
        assert_eq!(start, 42);
        assert_eq!(back, frames);
        // Truncated and inflated bodies are rejected.
        assert!(parse_frames(&body[..body.len() - 1]).is_err());
        let mut long = body.clone();
        long.push(0);
        assert!(parse_frames(&long).is_err());
    }

    #[test]
    fn stats_and_info_round_trip() {
        let s = StatsSnapshot {
            requests: 1,
            bytes_out: 2,
            cache_hits: 3,
            cache_misses: 4,
            decode_errors: 5,
            buffers_decoded: 6,
        };
        assert_eq!(parse_stats(&encode_stats(&s)).unwrap(), s);
        let i = StoreInfo {
            version: 2,
            n_atoms: 10,
            n_frames: 1000,
            buffer_size: 128,
            epoch_interval: 8,
            n_blocks: 8,
        };
        assert_eq!(parse_info(&encode_info(&i)).unwrap(), i);
    }

    #[test]
    fn framing_enforces_the_budget() {
        let mut buf = Vec::new();
        write_message(&mut buf, &[1, 2, 3]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_message(&mut r, 8).unwrap().unwrap(), vec![1, 2, 3]);
        assert!(read_message(&mut r, 8).unwrap().is_none());
        let mut oversized = Vec::new();
        write_message(&mut oversized, &[0u8; 16]).unwrap();
        assert!(read_message(&mut oversized.as_slice(), 8).is_err());
    }

    #[test]
    fn decoder_reassembles_a_one_byte_trickle() {
        let mut wire = Vec::new();
        write_message(&mut wire, &Request::Get { start: 2, end: 9 }.encode()).unwrap();
        write_message(&mut wire, &Request::Stats.encode()).unwrap();
        let mut dec = FrameDecoder::new(MAX_REQUEST_BODY);
        let mut frames = Vec::new();
        for byte in wire {
            dec.push(&[byte]);
            while let Some(body) = dec.next_frame().unwrap() {
                frames.push(body);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(Request::parse(&frames[0]).unwrap(), Request::Get { start: 2, end: 9 });
        assert_eq!(Request::parse(&frames[1]).unwrap(), Request::Stats);
        assert!(!dec.has_partial());
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_splits_two_requests_coalesced_in_one_chunk() {
        let mut wire = Vec::new();
        write_message(&mut wire, &Request::Info.encode()).unwrap();
        write_message(&mut wire, &Request::Metrics.encode()).unwrap();
        let mut dec = FrameDecoder::new(MAX_REQUEST_BODY);
        dec.push(&wire); // one TCP segment carrying both requests
        assert_eq!(dec.next_frame().unwrap().unwrap(), Request::Info.encode());
        assert_eq!(dec.next_frame().unwrap().unwrap(), Request::Metrics.encode());
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn decoder_rejects_oversized_prefix_before_allocating() {
        let mut dec = FrameDecoder::new(64);
        dec.push(&u32::MAX.to_le_bytes());
        let err = dec.next_frame().unwrap_err();
        assert_eq!(err, FrameError::Oversized { announced: u32::MAX as usize, budget: 64 });
        // Nothing beyond the 4 received bytes was ever buffered, and the
        // error is sticky: framing past a bad prefix cannot be trusted.
        assert_eq!(dec.buffered(), 4);
        assert!(!dec.has_partial());
        dec.push(&[0, 0, 0, 0]);
        assert_eq!(dec.next_frame().unwrap_err(), err);
    }

    #[test]
    fn decoder_partial_frame_is_flagged_until_complete() {
        let mut dec = FrameDecoder::new(64);
        assert!(!dec.has_partial());
        dec.push(&[3, 0, 0]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(dec.has_partial(), "mid-prefix counts as a started frame");
        dec.push(&[0, 7, 8]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(dec.has_partial(), "mid-body still partial");
        dec.push(&[9]);
        assert_eq!(dec.next_frame().unwrap(), Some(vec![7, 8, 9]));
        assert!(!dec.has_partial());
    }

    #[test]
    fn decoder_compaction_keeps_memory_proportional_to_unconsumed_bytes() {
        let mut dec = FrameDecoder::new(64);
        let mut wire = Vec::new();
        for i in 0..4096u32 {
            write_message(&mut wire, &i.to_le_bytes()).unwrap();
        }
        let mut popped = 0;
        for chunk in wire.chunks(7) {
            dec.push(chunk);
            while let Some(body) = dec.next_frame().unwrap() {
                assert_eq!(body, (popped as u32).to_le_bytes());
                popped += 1;
            }
            assert!(dec.buffered() <= 16, "consumed prefix must be dropped");
        }
        assert_eq!(popped, 4096);
    }
}
