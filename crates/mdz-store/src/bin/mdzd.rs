//! `mdzd` — serve an MDZ archive over TCP.
//!
//! ```text
//! mdzd <archive.mdz> [addr] [--engine threads|epoll] [--threads N]
//!      [--shards N] [--cache-epochs N] [--max-conns N]
//!      [--read-timeout-ms N] [--write-timeout-ms N] [--idle-timeout-ms N]
//!      [--drain-poll-ms N] [--live [--eps REL | --abs ABS] [--f32]]
//! ```
//!
//! `addr` defaults to `127.0.0.1:7979`. The process serves until killed.
//! The archive is opened through the crash-recovery scan, so a file left
//! with a torn append (garbage after the last valid footer) still serves
//! its published frames. Without `--live` the on-disk file is not
//! modified (run `mdz recover` to truncate a torn tail).
//!
//! `--live` enables the APPEND verb: clients stream raw frames, the
//! server compresses them under the given error bound (value-range
//! relative 1e-3 by default) and appends to the archive file under the
//! crash-safe footer-flip protocol, acknowledging only once the new
//! footer is synced. Followers (`mdz follow`) see appended frames as soon
//! as they are durable.
//!
//! `--engine epoll` swaps the blocking worker pool for the sharded
//! non-blocking event loop (epoll/kqueue): `--shards` (an alias for
//! `--threads`) sets the shard count, and each shard multiplexes
//! thousands of pipelined connections. The wire protocol and every
//! overload budget behave identically under both engines.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use mdz_core::{ErrorBound, MdzConfig};
use mdz_store::{
    AppendSink, Engine, FileIo, Precision, ReaderOptions, Registry, Server, ServerConfig,
    StoreOptions, StoreReader,
};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mdzd: {msg}");
            eprintln!(
                "usage: mdzd <archive.mdz> [addr] [--engine threads|epoll] [--threads N] \
                 [--shards N] [--cache-epochs N] [--max-conns N] [--read-timeout-ms N] \
                 [--write-timeout-ms N] [--idle-timeout-ms N] [--drain-poll-ms N] \
                 [--live [--eps REL | --abs ABS] [--f32]]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut archive = None;
    let mut addr = "127.0.0.1:7979".to_string();
    let mut cfg = ServerConfig::default();
    let mut reader_opts = ReaderOptions::default();
    let mut live = false;
    let mut eps = None;
    let mut abs = None;
    let mut f32_source = false;
    let mut args = std::env::args().skip(1);
    fn take_usize(args: &mut impl Iterator<Item = String>, what: &str) -> Result<usize, String> {
        args.next()
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or(format!("{what} needs a positive integer"))
    }
    fn take_f64(args: &mut impl Iterator<Item = String>, what: &str) -> Result<f64, String> {
        args.next().and_then(|v| v.parse::<f64>().ok()).ok_or(format!("{what} needs a number"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--engine" => {
                let name = args.next().ok_or("--engine needs a name")?;
                cfg.engine = Engine::parse(&name)
                    .ok_or(format!("unknown engine {name:?} (use threads or epoll)"))?;
            }
            // --shards is the event engine's natural spelling for the same knob.
            "--threads" | "--shards" => cfg.threads = take_usize(&mut args, &arg)?,
            "--cache-epochs" => reader_opts.cache_epochs = take_usize(&mut args, "--cache-epochs")?,
            "--max-conns" => cfg.max_connections = take_usize(&mut args, "--max-conns")?,
            "--read-timeout-ms" => {
                cfg.read_timeout =
                    Duration::from_millis(take_usize(&mut args, "--read-timeout-ms")? as u64)
            }
            "--write-timeout-ms" => {
                cfg.write_timeout =
                    Duration::from_millis(take_usize(&mut args, "--write-timeout-ms")? as u64)
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout =
                    Duration::from_millis(take_usize(&mut args, "--idle-timeout-ms")? as u64)
            }
            "--drain-poll-ms" => {
                cfg.drain_poll =
                    Duration::from_millis(take_usize(&mut args, "--drain-poll-ms")? as u64)
            }
            "--live" => live = true,
            "--eps" => eps = Some(take_f64(&mut args, "--eps")?),
            "--abs" => abs = Some(take_f64(&mut args, "--abs")?),
            "--f32" => f32_source = true,
            other if archive.is_none() => archive = Some(other.to_string()),
            other => addr = other.to_string(),
        }
    }
    let path = archive.ok_or("missing archive path")?;
    let data = std::fs::read(&path).map_err(|e| format!("read {path}: {e}"))?;
    let (reader, report) =
        StoreReader::recover_with_registry(data, reader_opts, Arc::new(Registry::new()))
            .map_err(|e| format!("open {path}: {e}"))?;
    if report.truncated_bytes > 0 {
        eprintln!(
            "mdzd: {path} has a torn tail: serving the {} valid bytes, ignoring {} garbage \
             bytes (run `mdz recover` to repair the file)",
            report.valid_len, report.truncated_bytes
        );
    }
    let idx = reader.index();
    eprintln!(
        "mdzd: serving {path} (v{}, {} frames × {} atoms, {} blocks, {} epochs)",
        idx.version,
        idx.n_frames,
        idx.n_atoms,
        idx.blocks.len(),
        idx.n_epochs()
    );
    let mut server = Server::bind(reader, &addr, cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    if live {
        // Compression config for server-side appends; the archive's own
        // geometry (buffer size, epoch interval) always wins.
        let bound = match (abs, eps) {
            (Some(a), _) => ErrorBound::Absolute(a),
            (None, Some(r)) => ErrorBound::ValueRangeRelative(r),
            (None, None) => ErrorBound::ValueRangeRelative(1e-3),
        };
        let mut opts = StoreOptions::new(MdzConfig::new(bound));
        opts.precision = if f32_source { Precision::F32 } else { Precision::F64 };
        let io = FileIo::open(&path).map_err(|e| format!("opening {path} for append: {e}"))?;
        server = server.with_append_sink(AppendSink::new(Box::new(io), opts));
        eprintln!("mdzd: live ingest enabled (APPEND accepted, bound {bound:?})");
    }
    eprintln!("mdzd: listening on {}", server.local_addr().map_err(|e| e.to_string())?);
    server.run().map_err(|e| e.to_string())
}
