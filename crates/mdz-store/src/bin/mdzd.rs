//! `mdzd` — serve an MDZ archive over TCP.
//!
//! ```text
//! mdzd <archive.mdz> [addr] [--threads N] [--cache-epochs N]
//! ```
//!
//! `addr` defaults to `127.0.0.1:7979`. The process serves until killed.

use std::process::ExitCode;

use mdz_store::{ReaderOptions, Server, ServerConfig, StoreReader};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mdzd: {msg}");
            eprintln!("usage: mdzd <archive.mdz> [addr] [--threads N] [--cache-epochs N]");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut archive = None;
    let mut addr = "127.0.0.1:7979".to_string();
    let mut cfg = ServerConfig::default();
    let mut reader_opts = ReaderOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                cfg.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a positive integer")?;
            }
            "--cache-epochs" => {
                reader_opts.cache_epochs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--cache-epochs needs a positive integer")?;
            }
            other if archive.is_none() => archive = Some(other.to_string()),
            other => addr = other.to_string(),
        }
    }
    let path = archive.ok_or("missing archive path")?;
    let data = std::fs::read(&path).map_err(|e| format!("read {path}: {e}"))?;
    let reader =
        StoreReader::with_options(data, reader_opts).map_err(|e| format!("open {path}: {e}"))?;
    let idx = reader.index();
    eprintln!(
        "mdzd: serving {path} (v{}, {} frames × {} atoms, {} blocks, epoch interval {})",
        idx.version,
        idx.n_frames,
        idx.n_atoms,
        idx.blocks.len(),
        idx.epoch_interval
    );
    let server = Server::bind(reader, &addr, cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    eprintln!("mdzd: listening on {}", server.local_addr().map_err(|e| e.to_string())?);
    server.run().map_err(|e| e.to_string())
}
