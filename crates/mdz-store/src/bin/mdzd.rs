//! `mdzd` — serve an MDZ archive over TCP.
//!
//! ```text
//! mdzd <archive.mdz> [addr] [--threads N] [--cache-epochs N]
//!      [--max-conns N] [--read-timeout-ms N] [--write-timeout-ms N]
//!      [--idle-timeout-ms N]
//! ```
//!
//! `addr` defaults to `127.0.0.1:7979`. The process serves until killed.
//! The archive is opened through the crash-recovery scan, so a file left
//! with a torn append (garbage after the last valid footer) still serves
//! its published frames; the on-disk file is not modified (run
//! `mdz recover` to truncate it).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use mdz_store::{ReaderOptions, Registry, Server, ServerConfig, StoreReader};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mdzd: {msg}");
            eprintln!(
                "usage: mdzd <archive.mdz> [addr] [--threads N] [--cache-epochs N] \
                 [--max-conns N] [--read-timeout-ms N] [--write-timeout-ms N] \
                 [--idle-timeout-ms N]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut archive = None;
    let mut addr = "127.0.0.1:7979".to_string();
    let mut cfg = ServerConfig::default();
    let mut reader_opts = ReaderOptions::default();
    let mut args = std::env::args().skip(1);
    fn take_usize(args: &mut impl Iterator<Item = String>, what: &str) -> Result<usize, String> {
        args.next()
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or(format!("{what} needs a positive integer"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => cfg.threads = take_usize(&mut args, "--threads")?,
            "--cache-epochs" => reader_opts.cache_epochs = take_usize(&mut args, "--cache-epochs")?,
            "--max-conns" => cfg.max_connections = take_usize(&mut args, "--max-conns")?,
            "--read-timeout-ms" => {
                cfg.read_timeout =
                    Duration::from_millis(take_usize(&mut args, "--read-timeout-ms")? as u64)
            }
            "--write-timeout-ms" => {
                cfg.write_timeout =
                    Duration::from_millis(take_usize(&mut args, "--write-timeout-ms")? as u64)
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout =
                    Duration::from_millis(take_usize(&mut args, "--idle-timeout-ms")? as u64)
            }
            other if archive.is_none() => archive = Some(other.to_string()),
            other => addr = other.to_string(),
        }
    }
    let path = archive.ok_or("missing archive path")?;
    let data = std::fs::read(&path).map_err(|e| format!("read {path}: {e}"))?;
    let (reader, report) =
        StoreReader::recover_with_registry(data, reader_opts, Arc::new(Registry::new()))
            .map_err(|e| format!("open {path}: {e}"))?;
    if report.truncated_bytes > 0 {
        eprintln!(
            "mdzd: {path} has a torn tail: serving the {} valid bytes, ignoring {} garbage \
             bytes (run `mdz recover` to repair the file)",
            report.valid_len, report.truncated_bytes
        );
    }
    let idx = reader.index();
    eprintln!(
        "mdzd: serving {path} (v{}, {} frames × {} atoms, {} blocks, {} epochs)",
        idx.version,
        idx.n_frames,
        idx.n_atoms,
        idx.blocks.len(),
        idx.n_epochs()
    );
    let server = Server::bind(reader, &addr, cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    eprintln!("mdzd: listening on {}", server.local_addr().map_err(|e| e.to_string())?);
    server.run().map_err(|e| e.to_string())
}
