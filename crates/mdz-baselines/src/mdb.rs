//! ModelarDB baseline: per-segment model selection (PMC-mean, Swing,
//! Gorilla) over each particle's time series.
//!
//! ModelarDB (Jensen et al., VLDB 2018) greedily fits each incoming time
//! series with the cheapest model that honours the bound: a constant
//! (PMC-mean), a line (Swing filter), or — when neither extends — the
//! lossless Gorilla fallback for a single value. Matching the paper's §III
//! characterization, there is *no quantization-code entropy stage*: segment
//! parameters are emitted directly as varints/raw bits, which is exactly
//! why its compression ratios collapse on MD data (Fig. 12's 1–6×).

use crate::common::resolve_eps;
use crate::common::{read_header, write_header, BaselineError};
use mdz_core::{Codec, ErrorBound};
use mdz_entropy::{read_ivarint, read_uvarint, write_ivarint, write_uvarint};

const MAGIC: &[u8; 4] = b"BMDB";
const MAX_GRID: f64 = (1i64 << 60) as f64;

/// The ModelarDB-style baseline compressor.
#[derive(Debug, Clone, Default)]
pub struct Mdb;

impl Mdb {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

enum Seg {
    /// Constant segment: `len` points at `grid_idx · (eps/2)`.
    Pmc { len: usize, grid_idx: i64 },
    /// Linear segment: anchor/slope grids as in HRTC.
    Swing { len: usize, anchor_idx: i64, slope_idx: i64 },
    /// One verbatim value.
    Raw(f64),
}

/// Longest prefix of `series` fitting a constant within `±tau` of some
/// midpoint, returned with the midpoint.
fn pmc_extent(series: &[f64], tau: f64) -> (usize, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut len = 0;
    for &v in series {
        if !v.is_finite() {
            break;
        }
        let nmin = min.min(v);
        let nmax = max.max(v);
        if nmax - nmin > 2.0 * tau {
            break;
        }
        min = nmin;
        max = nmax;
        len += 1;
    }
    (len, if len > 0 { 0.5 * (min + max) } else { 0.0 })
}

/// Longest prefix fitting a line within `±tau` from a fixed anchor.
fn swing_extent(series: &[f64], anchor: f64, tau: f64) -> (usize, f64) {
    if series.is_empty() || !series[0].is_finite() || (series[0] - anchor).abs() > tau {
        return (0, 0.0);
    }
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    let mut len = 1;
    while len < series.len() {
        let v = series[len];
        if !v.is_finite() {
            break;
        }
        let k = len as f64;
        let nlo = lo.max((v - tau - anchor) / k);
        let nhi = hi.min((v + tau - anchor) / k);
        if nlo > nhi {
            break;
        }
        lo = nlo;
        hi = nhi;
        len += 1;
    }
    let slope = if len > 1 { 0.5 * (lo + hi) } else { 0.0 };
    (len, slope)
}

fn segment_series(series: &[f64], eps: f64) -> Vec<Seg> {
    // Error budget: model fit τ + parameter grids ≤ eps.
    let tau = eps * 0.5;
    let const_grid = eps * 0.25;
    let mut segs = Vec::new();
    let mut t = 0;
    while t < series.len() {
        let rest = &series[t..];
        let v0 = rest[0];
        if !v0.is_finite() {
            segs.push(Seg::Raw(v0));
            t += 1;
            continue;
        }
        let (pmc_len, mid) = pmc_extent(rest, tau);
        let mid_idx_f = (mid / const_grid).round();
        let anchor_idx_f = (v0 / (eps / 4.0)).round();
        if !mid_idx_f.is_finite()
            || mid_idx_f.abs() > MAX_GRID
            || !anchor_idx_f.is_finite()
            || anchor_idx_f.abs() > MAX_GRID
        {
            segs.push(Seg::Raw(v0));
            t += 1;
            continue;
        }
        let anchor = anchor_idx_f * (eps / 4.0);
        let (swing_len, slope) = swing_extent(rest, anchor, tau);
        // Model choice: swing costs one extra varint; require it to cover
        // at least two more points than the constant to pay for itself.
        if swing_len >= pmc_len + 2 && swing_len >= 2 {
            let slope_grid = eps / (4.0 * (swing_len - 1) as f64);
            let slope_idx_f = (slope / slope_grid).round();
            if slope_idx_f.is_finite() && slope_idx_f.abs() <= MAX_GRID {
                segs.push(Seg::Swing {
                    len: swing_len,
                    anchor_idx: anchor_idx_f as i64,
                    slope_idx: slope_idx_f as i64,
                });
                t += swing_len;
                continue;
            }
        }
        if pmc_len >= 1 {
            segs.push(Seg::Pmc { len: pmc_len, grid_idx: mid_idx_f as i64 });
            t += pmc_len;
        } else {
            segs.push(Seg::Raw(v0));
            t += 1;
        }
    }
    segs
}

impl Codec for Mdb {
    fn name(&self) -> &'static str {
        "MDB"
    }

    fn reset(&mut self) {}

    fn compress_buffer(
        &mut self,
        snapshots: &[Vec<f64>],
        bound: ErrorBound,
    ) -> mdz_core::Result<Vec<u8>> {
        Ok(self.compress(snapshots, resolve_eps(bound, snapshots)))
    }

    fn decompress_buffer(&mut self, data: &[u8]) -> mdz_core::Result<Vec<Vec<f64>>> {
        Ok(self.decompress(data)?)
    }
}

impl Mdb {
    fn compress(&mut self, snapshots: &[Vec<f64>], eps: f64) -> Vec<u8> {
        let m = snapshots.len();
        let n = snapshots[0].len();
        let mut out = Vec::new();
        write_header(&mut out, MAGIC, m, n, eps);
        let mut series = Vec::with_capacity(m);
        for p in 0..n {
            series.clear();
            for snap in snapshots {
                series.push(snap[p]);
            }
            let segs = segment_series(&series, eps);
            write_uvarint(&mut out, segs.len() as u64);
            for seg in &segs {
                match *seg {
                    Seg::Pmc { len, grid_idx } => {
                        write_uvarint(&mut out, (len as u64) << 2);
                        write_ivarint(&mut out, grid_idx);
                    }
                    Seg::Swing { len, anchor_idx, slope_idx } => {
                        write_uvarint(&mut out, ((len as u64) << 2) | 1);
                        write_ivarint(&mut out, anchor_idx);
                        write_ivarint(&mut out, slope_idx);
                    }
                    Seg::Raw(v) => {
                        write_uvarint(&mut out, (1u64 << 2) | 2);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    #[allow(clippy::needless_range_loop)] // p indexes a column across rows
    fn decompress(&mut self, data: &[u8]) -> Result<Vec<Vec<f64>>, BaselineError> {
        let mut pos = 0;
        let (m, n, eps) = read_header(data, &mut pos, MAGIC)?;
        let const_grid = eps * 0.25;
        let mut out = vec![vec![0.0f64; n]; m];
        for p in 0..n {
            let n_segs = read_uvarint(data, &mut pos)? as usize;
            if n_segs > m {
                return Err(BaselineError::Corrupt("too many segments"));
            }
            let mut t = 0usize;
            for _ in 0..n_segs {
                let tag = read_uvarint(data, &mut pos)?;
                let kind = tag & 3;
                let len = (tag >> 2) as usize;
                if len == 0 || t + len > m {
                    return Err(BaselineError::Corrupt("segment overruns series"));
                }
                match kind {
                    0 => {
                        let grid_idx = read_ivarint(data, &mut pos)?;
                        let v = grid_idx as f64 * const_grid;
                        for k in 0..len {
                            out[t + k][p] = v;
                        }
                    }
                    1 => {
                        let anchor_idx = read_ivarint(data, &mut pos)?;
                        let slope_idx = read_ivarint(data, &mut pos)?;
                        let anchor = anchor_idx as f64 * (eps / 4.0);
                        let slope_grid = eps / (4.0 * (len.max(2) - 1) as f64);
                        let slope = slope_idx as f64 * slope_grid;
                        for k in 0..len {
                            out[t + k][p] = anchor + slope * k as f64;
                        }
                    }
                    2 => {
                        let bytes = data
                            .get(pos..pos + 8)
                            .ok_or(BaselineError::Corrupt("truncated raw value"))?;
                        pos += 8;
                        out[t][p] = f64::from_le_bytes(bytes.try_into().unwrap());
                    }
                    _ => return Err(BaselineError::Corrupt("unknown segment kind")),
                }
                t += len;
            }
            if t != m {
                return Err(BaselineError::Corrupt("segments do not cover series"));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_round_trip, lattice_buffer, smooth_buffer};

    #[test]
    fn round_trips() {
        let mut c = Mdb::new();
        check_round_trip(&mut c, &lattice_buffer(10, 100, 1e-4, 51), 1e-3);
        check_round_trip(&mut c, &smooth_buffer(10, 100, 52), 1e-3);
        check_round_trip(&mut c, &[vec![9.0]], 1e-5);
    }

    #[test]
    fn constant_series_uses_one_pmc_segment() {
        let snaps = vec![vec![5.0; 50]; 20];
        let mut c = Mdb::new();
        let size = check_round_trip(&mut c, &snaps, 1e-3);
        // One segment per particle: tag + grid index ≈ a few bytes each.
        assert!(size < 50 * 12 + 64, "got {size}");
    }

    #[test]
    fn pmc_extent_logic() {
        let (len, mid) = pmc_extent(&[1.0, 1.05, 0.95, 1.02, 3.0], 0.1);
        assert_eq!(len, 4);
        assert!((mid - 1.0).abs() < 0.05);
        let (len0, _) = pmc_extent(&[f64::NAN, 1.0], 0.1);
        assert_eq!(len0, 0);
    }

    #[test]
    fn swing_beats_pmc_on_ramps() {
        let series: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        let segs = segment_series(&series, 0.01);
        assert_eq!(segs.len(), 1);
        assert!(matches!(segs[0], Seg::Swing { len: 10, .. }));
    }

    #[test]
    fn non_finite_values() {
        let mut snaps = lattice_buffer(6, 40, 0.0, 53);
        snaps[0][0] = f64::INFINITY;
        snaps[3][3] = f64::NAN;
        check_round_trip(&mut Mdb::new(), &snaps, 1e-3);
    }

    #[test]
    fn corrupt_input_errors() {
        let mut c = Mdb::new();
        let blob = c.compress(&lattice_buffer(4, 30, 0.0, 54), 1e-3);
        for cut in [0, 6, blob.len() / 3] {
            assert!(c.decompress(&blob[..cut]).is_err());
        }
    }
}
