//! Re-implementations of the lossy compressors MDZ is evaluated against.
//!
//! The paper (§VII-A4) compares MDZ with six systems. Each module here
//! reimplements the published core of one of them, sharing this workspace's
//! entropy/dictionary substrates so the comparison isolates the *prediction
//! model* — which is what differentiates the systems on MD data:
//!
//! * [`sz2`] — SZ 2.x: Lorenzo prediction (1-D or 2-D over the
//!   snapshot × particle array) + linear-scale quantization + Huffman + LZ.
//! * [`tng`] — TNG/XTC-style fixed-point quantization with intra-frame
//!   delta coding and a dictionary stage.
//! * [`hrtc`] — HRTC: piecewise-linear trajectory approximation (swing
//!   filter) with error-controlled quantization and varint coding.
//! * [`asn`] — Li et al.'s adjacent-snapshot compressor for N-body data:
//!   previous-snapshot prediction + quantization + entropy coding.
//! * [`mdb`] — ModelarDB's model palette (PMC-mean, Swing, Gorilla) with
//!   greedy per-segment selection over each particle's time series.
//! * [`lfzip`] — LFZip with its NLMS adaptive linear predictor and uniform
//!   residual quantizer.
//! * [`sz3`] — SZ-Interp-style multilevel interpolation (the paper's
//!   reference \[31\]), included to test §II's claim that interpolation
//!   compressors are sub-optimal on MD data.
//!
//! All baselines implement [`mdz_core::Codec`] — the same interface MDZ
//! itself exposes — so harnesses and archives drive every compressor in the
//! evaluation uniformly, with no MDZ-vs-baseline special casing.

pub mod asn;
pub mod common;
pub mod hrtc;
pub mod lfzip;
pub mod mdb;
pub mod sz2;
pub mod sz3;
pub mod tng;

pub use common::BaselineError;
pub use mdz_core::Codec;

/// All six baselines, boxed for harness iteration.
pub fn all_baselines() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(sz2::Sz2::new(sz2::Sz2Mode::TwoD)),
        Box::new(tng::Tng::new()),
        Box::new(hrtc::Hrtc::new()),
        Box::new(asn::Asn::new()),
        Box::new(mdb::Mdb::new()),
        Box::new(lfzip::Lfzip::new()),
        Box::new(sz3::Sz3::new()),
    ]
}

#[cfg(test)]
pub(crate) mod testutil {
    use mdz_core::{Codec, ErrorBound};

    /// Shared round-trip checker used by every baseline's tests.
    pub fn check_round_trip<C: Codec>(c: &mut C, snapshots: &[Vec<f64>], eps: f64) -> usize {
        let blob = c.compress_buffer(snapshots, ErrorBound::Absolute(eps)).expect("compress");
        let out = c.decompress_buffer(&blob).expect("decompress");
        assert_eq!(out.len(), snapshots.len(), "{}: snapshot count", c.name());
        for (s, o) in snapshots.iter().zip(out.iter()) {
            assert_eq!(s.len(), o.len(), "{}: snapshot width", c.name());
            for (a, b) in s.iter().zip(o.iter()) {
                if a.is_finite() {
                    assert!(
                        (a - b).abs() <= eps * (1.0 + 1e-9),
                        "{}: |{} - {}| > {}",
                        c.name(),
                        a,
                        b,
                        eps
                    );
                } else {
                    assert_eq!(a.to_bits(), b.to_bits(), "{}", c.name());
                }
            }
        }
        blob.len()
    }

    /// Lattice-with-vibration buffer (crystalline regime).
    pub fn lattice_buffer(m: usize, n: usize, drift: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut s = seed | 1;
        (0..m)
            .map(|t| {
                (0..n)
                    .map(|i| {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let u = (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                        (i % 12) as f64 * 2.0 + u * 0.04 + t as f64 * drift
                    })
                    .collect()
            })
            .collect()
    }

    /// Smooth-in-time, random-in-space buffer (liquid regime).
    pub fn smooth_buffer(m: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut s = seed | 1;
        let base: Vec<f64> = (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 * 40.0
            })
            .collect();
        (0..m).map(|t| base.iter().map(|&v| v + t as f64 * 1e-4).collect()).collect()
    }
}
