//! SZ3-style interpolation baseline.
//!
//! SZ3 / SZ-Interp (Zhao et al., ICDE 2021 — the paper's reference \[31\])
//! replaces Lorenzo prediction with level-by-level *spline interpolation*:
//! grid points are reconstructed coarsest-first, and each finer level's
//! points are predicted by interpolating already-reconstructed neighbours.
//! The MDZ paper argues this family is sub-optimal on MD data (§II) because
//! particle data is not smooth in space; this implementation lets the
//! evaluation test that claim directly.
//!
//! The predictor interpolates along one dimension of the `M × N` buffer —
//! per-snapshot (space) or per-particle (time) — trying both and keeping
//! the smaller output, which mirrors SZ3's dimension auto-tuning.

use crate::common::resolve_eps;
use crate::common::{read_header, write_header, BaselineError, CodeSink, CodeSource, RADIUS};
use mdz_core::LinearQuantizer;
use mdz_core::{Codec, ErrorBound};

const MAGIC: &[u8; 4] = b"BSZ3";

/// The SZ3-style interpolation baseline.
#[derive(Debug, Clone, Default)]
pub struct Sz3;

impl Sz3 {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

/// Visits the indices of a 1-D multilevel interpolation in coding order,
/// yielding `(index, left_neighbour, right_neighbour)`; `right` is `None`
/// at the series tail where only one-sided prediction is possible.
fn visit_levels(n: usize, mut f: impl FnMut(usize, Option<usize>, Option<usize>)) {
    if n == 0 {
        return;
    }
    // Index 0 is the root anchor (no neighbours).
    f(0, None, None);
    if n == 1 {
        return;
    }
    let mut stride = 1usize;
    while stride < n - 1 {
        stride <<= 1;
    }
    // Levels: odd multiples of s, with neighbours at ±s (multiples of 2s).
    let mut s = stride;
    while s >= 1 {
        let mut i = s;
        while i < n {
            let left = Some(i - s);
            let right = if i + s < n { Some(i + s) } else { None };
            f(i, left, right);
            i += 2 * s;
        }
        if s == 1 {
            break;
        }
        s >>= 1;
    }
}

/// Encodes one series with multilevel linear interpolation.
fn encode_series(series: &[f64], quant: &LinearQuantizer, sink: &mut CodeSink) {
    let mut recon = vec![0.0f64; series.len()];
    visit_levels(series.len(), |i, left, right| {
        let pred = match (left, right) {
            (Some(l), Some(r)) => 0.5 * (recon[l] + recon[r]),
            (Some(l), None) => recon[l],
            _ => 0.0,
        };
        recon[i] = sink.push(quant, series[i], pred);
    });
}

/// Decodes one series (mirror of [`encode_series`]); `flat_base` maps local
/// indices into the sink's flat code space via `order`.
fn decode_series(
    n: usize,
    order: &[usize],
    quant: &LinearQuantizer,
    src: &CodeSource,
    out: &mut [f64],
) -> Result<(), BaselineError> {
    let mut k = 0usize;
    let mut err = None;
    visit_levels(n, |i, left, right| {
        if err.is_some() {
            return;
        }
        let pred = match (left, right) {
            (Some(l), Some(r)) => 0.5 * (out[l] + out[r]),
            (Some(l), None) => out[l],
            _ => 0.0,
        };
        match src.reconstruct(quant, order[k], pred) {
            Ok(v) => out[i] = v,
            Err(e) => err = Some(e),
        }
        k += 1;
    });
    err.map_or(Ok(()), Err)
}

/// Interpolation axis.
#[derive(Clone, Copy, PartialEq)]
enum Axis {
    Space,
    Time,
}

fn compress_with_axis(snapshots: &[Vec<f64>], eps: f64, axis: Axis) -> Vec<u8> {
    let m = snapshots.len();
    let n = snapshots[0].len();
    let quant = LinearQuantizer::new(eps, RADIUS);
    let mut out = Vec::new();
    write_header(&mut out, MAGIC, m, n, eps);
    out.push(match axis {
        Axis::Space => 0,
        Axis::Time => 1,
    });
    let mut sink = CodeSink::with_capacity(m * n);
    match axis {
        Axis::Space => {
            for snap in snapshots {
                encode_series(snap, &quant, &mut sink);
            }
        }
        Axis::Time => {
            let mut series = Vec::with_capacity(m);
            for p in 0..n {
                series.clear();
                for snap in snapshots {
                    series.push(snap[p]);
                }
                encode_series(&series, &quant, &mut sink);
            }
        }
    }
    sink.finish(&mut out);
    out
}

impl Codec for Sz3 {
    fn name(&self) -> &'static str {
        "SZ3"
    }

    fn reset(&mut self) {}

    fn compress_buffer(
        &mut self,
        snapshots: &[Vec<f64>],
        bound: ErrorBound,
    ) -> mdz_core::Result<Vec<u8>> {
        Ok(self.compress(snapshots, resolve_eps(bound, snapshots)))
    }

    fn decompress_buffer(&mut self, data: &[u8]) -> mdz_core::Result<Vec<Vec<f64>>> {
        Ok(self.decompress(data)?)
    }
}

impl Sz3 {
    fn compress(&mut self, snapshots: &[Vec<f64>], eps: f64) -> Vec<u8> {
        // Dimension auto-tuning: try both interpolation axes, keep smaller.
        let a = compress_with_axis(snapshots, eps, Axis::Space);
        let b = compress_with_axis(snapshots, eps, Axis::Time);
        if a.len() <= b.len() {
            a
        } else {
            b
        }
    }

    fn decompress(&mut self, data: &[u8]) -> Result<Vec<Vec<f64>>, BaselineError> {
        let mut pos = 0;
        let (m, n, eps) = read_header(data, &mut pos, MAGIC)?;
        let axis = match data.get(pos).copied() {
            Some(0) => Axis::Space,
            Some(1) => Axis::Time,
            _ => return Err(BaselineError::Corrupt("bad axis byte")),
        };
        pos += 1;
        let quant = LinearQuantizer::new(eps, RADIUS);
        let src = CodeSource::parse(data, &mut pos, m * n)?;
        let mut out = vec![vec![0.0f64; n]; m];
        match axis {
            Axis::Space => {
                // Codes are consumed in visit order per snapshot; build the
                // flat-order map once.
                let order = visit_order(n);
                for (t, row) in out.iter_mut().enumerate() {
                    let shifted: Vec<usize> = order.iter().map(|&k| t * n + k).collect();
                    decode_series(n, &shifted, &quant, &src, row)?;
                }
            }
            Axis::Time => {
                let order = visit_order(m);
                let mut series = vec![0.0f64; m];
                // `out` is snapshot-major but this pass is particle-major,
                // so indexing by `p` inside the loop is the natural shape.
                #[allow(clippy::needless_range_loop)]
                for p in 0..n {
                    let shifted: Vec<usize> = order.iter().map(|&k| p * m + k).collect();
                    decode_series(m, &shifted, &quant, &src, &mut series)?;
                    for (t, &v) in series.iter().enumerate() {
                        out[t][p] = v;
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Flat code offsets in series-visit order: `offsets[k]` = position within
/// the per-series code run of the k-th visited element.
fn visit_order(n: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(n);
    let mut k = 0usize;
    visit_levels(n, |_, _, _| {
        order.push(k);
        k += 1;
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_round_trip, lattice_buffer, smooth_buffer};

    #[test]
    fn visit_covers_all_indices_once() {
        for n in [0usize, 1, 2, 3, 5, 8, 17, 100] {
            let mut seen = vec![false; n];
            visit_levels(n, |i, left, right| {
                assert!(!seen[i], "index {i} visited twice (n={n})");
                // Neighbours must already be reconstructed.
                if let Some(l) = left {
                    assert!(seen[l], "left {l} not yet visited (n={n})");
                }
                if let Some(r) = right {
                    assert!(seen[r], "right {r} not yet visited (n={n})");
                }
                seen[i] = true;
            });
            assert!(seen.iter().all(|&s| s), "not all indices visited (n={n})");
        }
    }

    #[test]
    fn round_trips() {
        let mut c = Sz3::new();
        check_round_trip(&mut c, &lattice_buffer(8, 130, 1e-4, 71), 1e-3);
        check_round_trip(&mut c, &smooth_buffer(8, 130, 72), 1e-3);
        check_round_trip(&mut c, &[vec![1.0]], 1e-5);
        check_round_trip(&mut c, &[vec![1.0, 2.0], vec![3.0, 4.0]], 1e-5);
    }

    #[test]
    fn interpolation_excels_on_smooth_ramps() {
        // Spatially linear data: interpolation residuals vanish.
        let snaps: Vec<Vec<f64>> =
            (0..6).map(|t| (0..512).map(|i| i as f64 * 0.5 + t as f64).collect()).collect();
        let size = check_round_trip(&mut Sz3::new(), &snaps, 1e-4);
        assert!(size < 6 * 512, "expected tiny output on linear data: {size}");
    }

    #[test]
    fn picks_time_axis_on_temporally_smooth_data() {
        let snaps = smooth_buffer(16, 64, 73);
        let space = compress_with_axis(&snaps, 1e-4, Axis::Space);
        let time = compress_with_axis(&snaps, 1e-4, Axis::Time);
        assert!(time.len() < space.len(), "time {} vs space {}", time.len(), space.len());
        let auto = Sz3::new().compress(&snaps, 1e-4);
        assert_eq!(auto.len(), time.len());
    }

    #[test]
    fn non_finite_values() {
        let mut snaps = lattice_buffer(4, 40, 0.0, 74);
        snaps[1][7] = f64::NAN;
        check_round_trip(&mut Sz3::new(), &snaps, 1e-3);
    }

    #[test]
    fn corrupt_input_errors() {
        let mut c = Sz3::new();
        let blob = c.compress(&lattice_buffer(4, 40, 0.0, 75), 1e-3);
        for cut in [0, 6, blob.len() / 2] {
            assert!(c.decompress(&blob[..cut]).is_err());
        }
    }
}
