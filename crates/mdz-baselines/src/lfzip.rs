//! LFZip baseline: NLMS adaptive linear prediction + uniform quantization.
//!
//! LFZip (Chandak et al., DCC 2020) predicts each value of a floating-point
//! time series with a normalized least-mean-squares (NLMS) filter over the
//! previous `K` *reconstructed* values, quantizes the residual uniformly
//! under the error bound, and entropy-codes the result (BSC in the
//! original; this workspace's Huffman + LZ tail here). Following the
//! paper's evaluation we use the NLMS predictor, not the 2000× slower
//! neural variant.
//!
//! The stream is traversed particle-major (each particle's time series
//! contiguously), which is how a time-series compressor sees MD data.

use crate::common::resolve_eps;
use crate::common::{read_header, write_header, BaselineError, CodeSink, CodeSource, RADIUS};
use mdz_core::LinearQuantizer;
use mdz_core::{Codec, ErrorBound};

const MAGIC: &[u8; 4] = b"LFZP";
/// Filter order (LFZip default: 32; shortened to fit MD buffer depths).
const ORDER: usize = 16;
/// NLMS step size.
const MU: f64 = 0.5;
/// Normalization floor.
const DELTA: f64 = 1e-6;

/// The LFZip-style baseline compressor.
#[derive(Debug, Clone, Default)]
pub struct Lfzip;

impl Lfzip {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

/// NLMS filter state shared by encoder and decoder.
struct Nlms {
    w: [f64; ORDER],
    /// Ring buffer of the last `ORDER` reconstructed values.
    h: [f64; ORDER],
    head: usize,
    filled: usize,
}

impl Nlms {
    fn new() -> Self {
        Self { w: [0.0; ORDER], h: [0.0; ORDER], head: 0, filled: 0 }
    }

    /// Predicts the next value; falls back to last-value prediction until
    /// the history window fills.
    fn predict(&self) -> f64 {
        if self.filled < ORDER {
            return if self.filled == 0 { 0.0 } else { self.h[(self.head + ORDER - 1) % ORDER] };
        }
        let mut p = 0.0;
        for k in 0..ORDER {
            p += self.w[k] * self.h[(self.head + k) % ORDER];
        }
        if p.is_finite() {
            p
        } else {
            0.0
        }
    }

    /// Folds the reconstructed value in and adapts the weights.
    fn update(&mut self, recon: f64, prediction: f64) {
        if self.filled >= ORDER && recon.is_finite() && prediction.is_finite() {
            let err = recon - prediction;
            let mut norm = DELTA;
            for k in 0..ORDER {
                let x = self.h[(self.head + k) % ORDER];
                norm += x * x;
            }
            let g = MU * err / norm;
            if g.is_finite() {
                for k in 0..ORDER {
                    self.w[k] += g * self.h[(self.head + k) % ORDER];
                    if !self.w[k].is_finite() {
                        self.w[k] = 0.0;
                    }
                }
            }
        }
        let r = if recon.is_finite() { recon } else { 0.0 };
        self.h[self.head] = r;
        self.head = (self.head + 1) % ORDER;
        self.filled = (self.filled + 1).min(ORDER);
    }
}

impl Codec for Lfzip {
    fn name(&self) -> &'static str {
        "LFZip"
    }

    fn reset(&mut self) {}

    fn compress_buffer(
        &mut self,
        snapshots: &[Vec<f64>],
        bound: ErrorBound,
    ) -> mdz_core::Result<Vec<u8>> {
        Ok(self.compress(snapshots, resolve_eps(bound, snapshots)))
    }

    fn decompress_buffer(&mut self, data: &[u8]) -> mdz_core::Result<Vec<Vec<f64>>> {
        Ok(self.decompress(data)?)
    }
}

impl Lfzip {
    fn compress(&mut self, snapshots: &[Vec<f64>], eps: f64) -> Vec<u8> {
        let m = snapshots.len();
        let n = snapshots[0].len();
        let quant = LinearQuantizer::new(eps, RADIUS);
        let mut out = Vec::new();
        write_header(&mut out, MAGIC, m, n, eps);
        let mut sink = CodeSink::with_capacity(m * n);
        let mut filter = Nlms::new();
        // Particle-major traversal.
        for p in 0..n {
            for snap in snapshots {
                let v = snap[p];
                let pred = filter.predict();
                let recon = sink.push(&quant, v, pred);
                filter.update(recon, pred);
            }
        }
        sink.finish(&mut out);
        out
    }

    fn decompress(&mut self, data: &[u8]) -> Result<Vec<Vec<f64>>, BaselineError> {
        let mut pos = 0;
        let (m, n, eps) = read_header(data, &mut pos, MAGIC)?;
        let quant = LinearQuantizer::new(eps, RADIUS);
        let src = CodeSource::parse(data, &mut pos, m * n)?;
        let mut out = vec![vec![0.0f64; n]; m];
        let mut filter = Nlms::new();
        let mut flat = 0usize;
        for p in 0..n {
            for row in out.iter_mut() {
                let pred = filter.predict();
                let recon = src.reconstruct(&quant, flat, pred)?;
                row[p] = recon;
                filter.update(recon, pred);
                flat += 1;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_round_trip, lattice_buffer, smooth_buffer};

    #[test]
    fn round_trips() {
        let mut c = Lfzip::new();
        check_round_trip(&mut c, &lattice_buffer(10, 120, 1e-4, 61), 1e-3);
        check_round_trip(&mut c, &smooth_buffer(10, 120, 62), 1e-3);
        check_round_trip(&mut c, &[vec![2.0, 4.0, 8.0]], 1e-4);
    }

    #[test]
    fn nlms_adapts_to_linear_signal() {
        // After warm-up, prediction error on a pure ramp should shrink.
        let mut f = Nlms::new();
        let mut late_err = 0.0;
        for i in 0..400 {
            let v = i as f64 * 0.1;
            let p = f.predict();
            if i > 300 {
                late_err += (v - p).abs();
            }
            f.update(v, p);
        }
        assert!(late_err / 100.0 < 0.1, "late avg err {}", late_err / 100.0);
    }

    #[test]
    fn filter_survives_non_finite_input() {
        let mut f = Nlms::new();
        for i in 0..50 {
            let v = if i == 20 { f64::NAN } else { i as f64 };
            let p = f.predict();
            f.update(v, p);
            assert!(f.predict().is_finite());
        }
    }

    #[test]
    fn non_finite_values_round_trip() {
        let mut snaps = lattice_buffer(5, 40, 0.0, 63);
        snaps[1][2] = f64::NAN;
        check_round_trip(&mut Lfzip::new(), &snaps, 1e-3);
    }

    #[test]
    fn corrupt_input_errors() {
        let mut c = Lfzip::new();
        let blob = c.compress(&lattice_buffer(4, 40, 0.0, 64), 1e-3);
        assert!(c.decompress(&blob[..blob.len() / 2]).is_err());
    }
}
