//! TNG baseline: fixed-point quantization + intra-frame delta + dictionary
//! coding.
//!
//! TNG (Lundborg et al., the GROMACS trajectory format) stores coordinates
//! as fixed-point integers at a user precision, delta-codes consecutive
//! atoms within a frame, and packs the integers with a palette of integer
//! codecs. We reproduce that pipeline with zigzag varints plus the LZ
//! stage. The error bound maps to the fixed-point step: `step = 2·eps`
//! guarantees `|d − d'| ≤ eps`.

use crate::common::resolve_eps;
use crate::common::{read_header, write_header, BaselineError};
use mdz_core::{Codec, ErrorBound};
use mdz_entropy::{read_uvarint, write_ivarint, write_uvarint, zigzag_decode, zigzag_encode};
use mdz_lossless::lz77;

const MAGIC: &[u8; 4] = b"BTNG";
/// Fixed-point integers beyond this escape to raw storage.
const MAX_FIXED: f64 = (1i64 << 60) as f64;

/// The TNG-style baseline compressor.
#[derive(Debug, Clone, Default)]
pub struct Tng;

impl Tng {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl Codec for Tng {
    fn name(&self) -> &'static str {
        "TNG"
    }

    fn reset(&mut self) {}

    fn compress_buffer(
        &mut self,
        snapshots: &[Vec<f64>],
        bound: ErrorBound,
    ) -> mdz_core::Result<Vec<u8>> {
        Ok(self.compress(snapshots, resolve_eps(bound, snapshots)))
    }

    fn decompress_buffer(&mut self, data: &[u8]) -> mdz_core::Result<Vec<Vec<f64>>> {
        Ok(self.decompress(data)?)
    }
}

impl Tng {
    fn compress(&mut self, snapshots: &[Vec<f64>], eps: f64) -> Vec<u8> {
        let m = snapshots.len();
        let n = snapshots[0].len();
        let step = 2.0 * eps;
        let mut out = Vec::new();
        write_header(&mut out, MAGIC, m, n, eps);
        let mut inner = Vec::with_capacity(m * n * 2);
        let mut escapes: Vec<(usize, f64)> = Vec::new();
        for (t, snap) in snapshots.iter().enumerate() {
            let mut prev = 0i64;
            for (i, &v) in snap.iter().enumerate() {
                let fixed = (v / step).round();
                if !fixed.is_finite() || fixed.abs() > MAX_FIXED || (fixed * step - v).abs() > eps {
                    // Escape: emit delta 0, store raw value.
                    write_ivarint(&mut inner, 0);
                    escapes.push((t * n + i, v));
                    continue;
                }
                let q = fixed as i64;
                write_ivarint(&mut inner, q - prev);
                prev = q;
            }
        }
        write_uvarint(&mut inner, escapes.len() as u64);
        let mut prev_idx = 0u64;
        for (k, &(idx, v)) in escapes.iter().enumerate() {
            let delta = if k == 0 { idx as u64 } else { idx as u64 - prev_idx };
            write_uvarint(&mut inner, delta);
            inner.extend_from_slice(&v.to_le_bytes());
            prev_idx = idx as u64;
        }
        let payload = lz77::compress(&inner, lz77::Level::Default);
        write_uvarint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out
    }

    fn decompress(&mut self, data: &[u8]) -> Result<Vec<Vec<f64>>, BaselineError> {
        let mut pos = 0;
        let (m, n, eps) = read_header(data, &mut pos, MAGIC)?;
        let step = 2.0 * eps;
        let payload_len = read_uvarint(data, &mut pos)? as usize;
        let end = pos
            .checked_add(payload_len)
            .filter(|&e| e <= data.len())
            .ok_or(BaselineError::Corrupt("truncated payload"))?;
        let inner = lz77::decompress(&data[pos..end])?;
        let mut ipos = 0;
        // First pass: read the delta stream.
        // Capped eager allocation: the loop hits UnexpectedEof long before
        // a forged m·n fills it.
        let mut deltas = Vec::with_capacity((m * n).min(1 << 20));
        for _ in 0..m * n {
            deltas.push(zigzag_decode(read_uvarint(&inner, &mut ipos)?));
        }
        let n_escapes = read_uvarint(&inner, &mut ipos)? as usize;
        if n_escapes > m * n {
            return Err(BaselineError::Corrupt("escape count exceeds block"));
        }
        let mut escapes = std::collections::HashMap::with_capacity(n_escapes.min(1 << 20));
        let mut idx = 0u64;
        for k in 0..n_escapes {
            let delta = read_uvarint(&inner, &mut ipos)?;
            idx = if k == 0 {
                delta
            } else {
                idx.checked_add(delta).ok_or(BaselineError::Corrupt("escape index overflow"))?
            };
            let bytes =
                inner.get(ipos..ipos + 8).ok_or(BaselineError::Corrupt("truncated escape"))?;
            ipos += 8;
            escapes.insert(idx as usize, f64::from_le_bytes(bytes.try_into().unwrap()));
        }
        let mut out = Vec::with_capacity(m);
        for t in 0..m {
            let mut snap = Vec::with_capacity(n);
            let mut prev = 0i64;
            for i in 0..n {
                let flat = t * n + i;
                if let Some(&raw) = escapes.get(&flat) {
                    // Escaped value; the delta stream carried a 0 for it.
                    snap.push(raw);
                    continue;
                }
                prev = prev.wrapping_add(deltas[flat]);
                snap.push(prev as f64 * step);
            }
            out.push(snap);
        }
        Ok(out)
    }
}

// Silence unused warning for zigzag_encode which documents the symmetry.
const _: fn(i64) -> u64 = zigzag_encode;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_round_trip, lattice_buffer, smooth_buffer};

    #[test]
    fn round_trips() {
        let mut c = Tng::new();
        check_round_trip(&mut c, &lattice_buffer(6, 200, 1e-4, 21), 1e-3);
        check_round_trip(&mut c, &smooth_buffer(6, 200, 22), 1e-3);
        check_round_trip(&mut c, &[vec![5.0]], 1e-6);
    }

    #[test]
    fn delta_coding_helps_on_sorted_coordinates() {
        // Monotone coordinates → small deltas → small varints.
        let snaps: Vec<Vec<f64>> =
            (0..4).map(|_| (0..1000).map(|i| i as f64 * 0.5).collect()).collect();
        let mut c = Tng::new();
        let size = check_round_trip(&mut c, &snaps, 1e-3);
        assert!(size < 4 * 1000 * 2, "expected tight packing, got {size}");
    }

    #[test]
    fn non_finite_and_huge_values_escape() {
        let mut snaps = lattice_buffer(3, 40, 0.0, 9);
        snaps[0][0] = f64::NAN;
        snaps[1][1] = 1e300;
        snaps[2][2] = f64::NEG_INFINITY;
        check_round_trip(&mut Tng::new(), &snaps, 1e-3);
    }

    #[test]
    fn corrupt_input_errors() {
        let mut c = Tng::new();
        let blob = c.compress(&lattice_buffer(3, 40, 0.0, 9), 1e-3);
        for cut in [0, 5, blob.len() - 1] {
            assert!(c.decompress(&blob[..cut]).is_err());
        }
    }
}
