//! Shared plumbing for baseline compressors: error type, code/escape blob
//! packing, and small header helpers.

use mdz_core::quant::Quantized;
use mdz_core::Quantizer;
use mdz_entropy::{
    huffman::huffman_decode_at, huffman_encode, read_uvarint, write_uvarint, EntropyError,
};
use mdz_lossless::lz77;

/// Error type shared by all baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// Underlying stream was malformed.
    Stream(EntropyError),
    /// Header/body structure invalid.
    Corrupt(&'static str),
}

impl From<EntropyError> for BaselineError {
    fn from(e: EntropyError) -> Self {
        BaselineError::Stream(e)
    }
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Stream(e) => write!(f, "stream error: {e}"),
            BaselineError::Corrupt(w) => write!(f, "corrupt stream: {w}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<BaselineError> for mdz_core::MdzError {
    fn from(e: BaselineError) -> Self {
        match e {
            BaselineError::Stream(s) => mdz_core::MdzError::Stream(s),
            BaselineError::Corrupt(w) => mdz_core::MdzError::BadHeader(w),
        }
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;

/// Resolves a per-call [`mdz_core::ErrorBound`] to the absolute `eps` the
/// baseline coders operate in, scanning the buffer's value range for
/// relative bounds (the same resolution MDZ applies internally).
pub fn resolve_eps(bound: mdz_core::ErrorBound, snapshots: &[Vec<f64>]) -> f64 {
    match bound {
        mdz_core::ErrorBound::Absolute(e) => e,
        mdz_core::ErrorBound::ValueRangeRelative(r) => {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for s in snapshots {
                for &v in s {
                    if v < lo {
                        lo = v;
                    }
                    if v > hi {
                        hi = v;
                    }
                }
            }
            let range = hi - lo;
            if range > 0.0 && range.is_finite() {
                r * range
            } else {
                f64::MIN_POSITIVE.max(1e-300)
            }
        }
    }
}

/// Encoder-side accumulator for the classic SZ tail: quantization codes +
/// escape list, Huffman-coded then LZ-compressed.
#[derive(Debug, Default)]
pub struct CodeSink {
    /// Quantization codes (0 = escape marker).
    pub codes: Vec<u32>,
    /// `(flat index, verbatim value)` escape records.
    pub escapes: Vec<(usize, f64)>,
}

impl CodeSink {
    /// Creates an empty sink with capacity for `n` codes.
    pub fn with_capacity(n: usize) -> Self {
        Self { codes: Vec::with_capacity(n), escapes: Vec::new() }
    }

    /// Quantizes `value` against `prediction` through any
    /// [`Quantizer`] stage, recording code or escape, and returns the
    /// reconstruction.
    #[inline]
    pub fn push(&mut self, quant: &impl Quantizer, value: f64, prediction: f64) -> f64 {
        let mut recon = 0.0;
        match quant.quantize(value, prediction, &mut recon) {
            Quantized::Code(c) => self.codes.push(c),
            Quantized::Escape => {
                self.codes.push(0);
                self.escapes.push((self.codes.len() - 1, value));
            }
        }
        recon
    }

    /// Serializes codes + escapes, Huffman + LZ compressed, appending to `out`.
    pub fn finish(self, out: &mut Vec<u8>) {
        let mut inner = huffman_encode(&self.codes);
        write_uvarint(&mut inner, self.escapes.len() as u64);
        let mut prev = 0u64;
        for (i, &(idx, v)) in self.escapes.iter().enumerate() {
            let delta = if i == 0 { idx as u64 } else { idx as u64 - prev };
            write_uvarint(&mut inner, delta);
            inner.extend_from_slice(&v.to_le_bytes());
            prev = idx as u64;
        }
        let payload = lz77::compress(&inner, lz77::Level::Default);
        write_uvarint(out, payload.len() as u64);
        out.extend_from_slice(&payload);
    }
}

/// Decoder-side counterpart of [`CodeSink`].
#[derive(Debug)]
pub struct CodeSource {
    /// Decoded quantization codes (0 = escape marker).
    pub codes: Vec<u32>,
    escapes: std::collections::HashMap<usize, f64>,
}

impl CodeSource {
    /// Parses a [`CodeSink::finish`] blob from `data` at `*pos`.
    pub fn parse(data: &[u8], pos: &mut usize, expected_codes: usize) -> Result<Self> {
        let payload_len = read_uvarint(data, pos)? as usize;
        let end = pos
            .checked_add(payload_len)
            .filter(|&e| e <= data.len())
            .ok_or(BaselineError::Corrupt("truncated payload"))?;
        let inner = lz77::decompress(&data[*pos..end])?;
        *pos = end;
        let mut ipos = 0;
        let codes = huffman_decode_at(&inner, &mut ipos)?;
        if codes.len() != expected_codes {
            return Err(BaselineError::Corrupt("code count mismatch"));
        }
        let n_escapes = read_uvarint(&inner, &mut ipos)? as usize;
        if n_escapes > codes.len() {
            return Err(BaselineError::Corrupt("escape count exceeds codes"));
        }
        let mut escapes = std::collections::HashMap::with_capacity(n_escapes.min(1 << 20));
        let mut idx = 0u64;
        for i in 0..n_escapes {
            let delta = read_uvarint(&inner, &mut ipos)?;
            idx = if i == 0 {
                delta
            } else {
                idx.checked_add(delta).ok_or(BaselineError::Corrupt("escape index overflow"))?
            };
            let bytes = inner
                .get(ipos..ipos + 8)
                .ok_or(BaselineError::Stream(EntropyError::UnexpectedEof))?;
            ipos += 8;
            escapes.insert(idx as usize, f64::from_le_bytes(bytes.try_into().unwrap()));
        }
        Ok(Self { codes, escapes })
    }

    /// Reconstructs the value at flat position `i` given its prediction,
    /// through any [`Quantizer`] stage.
    #[inline]
    pub fn reconstruct(&self, quant: &impl Quantizer, i: usize, prediction: f64) -> Result<f64> {
        let code = self.codes[i];
        if code == 0 {
            self.escapes.get(&i).copied().ok_or(BaselineError::Corrupt("missing escape value"))
        } else {
            Ok(quant.reconstruct(code, prediction))
        }
    }
}

/// Writes the standard baseline header `(magic, m, n, eps)`.
pub fn write_header(out: &mut Vec<u8>, magic: &[u8; 4], m: usize, n: usize, eps: f64) {
    out.extend_from_slice(magic);
    write_uvarint(out, m as u64);
    write_uvarint(out, n as u64);
    out.extend_from_slice(&eps.to_le_bytes());
}

/// Reads a baseline header, validating the magic.
pub fn read_header(data: &[u8], pos: &mut usize, magic: &[u8; 4]) -> Result<(usize, usize, f64)> {
    let got = data.get(*pos..*pos + 4).ok_or(BaselineError::Corrupt("truncated magic"))?;
    if got != magic {
        return Err(BaselineError::Corrupt("magic mismatch"));
    }
    *pos += 4;
    let m = read_uvarint(data, pos)? as usize;
    let n = read_uvarint(data, pos)? as usize;
    // Tighter than the core format's guard: baseline decoders eagerly
    // allocate O(m·n) buffers, so a forged header must stay cheap. 2^24
    // values comfortably covers every harness configuration.
    if m == 0 || n == 0 || m.checked_mul(n).is_none_or(|p| p > (1 << 24)) {
        return Err(BaselineError::Corrupt("implausible dimensions"));
    }
    let eps_bytes = data.get(*pos..*pos + 8).ok_or(BaselineError::Corrupt("truncated eps"))?;
    *pos += 8;
    let eps = f64::from_le_bytes(eps_bytes.try_into().unwrap());
    if !(eps > 0.0 && eps.is_finite()) {
        return Err(BaselineError::Corrupt("invalid eps"));
    }
    Ok((m, n, eps))
}

/// Default quantization radius used by the SZ-style baselines.
pub const RADIUS: u32 = 512;

#[cfg(test)]
mod tests {
    use super::*;
    use mdz_core::LinearQuantizer;

    #[test]
    fn sink_source_round_trip() {
        let quant = LinearQuantizer::new(0.01, RADIUS);
        let values: Vec<f64> = (0..500).map(|i| (i as f64 * 0.1).sin() * 3.0).collect();
        let mut sink = CodeSink::with_capacity(values.len());
        let mut recons = Vec::new();
        for &v in &values {
            recons.push(sink.push(&quant, v, 0.0));
        }
        let mut blob = Vec::new();
        sink.finish(&mut blob);
        let mut pos = 0;
        let src = CodeSource::parse(&blob, &mut pos, values.len()).unwrap();
        for (i, (&v, &r)) in values.iter().zip(recons.iter()).enumerate() {
            let got = src.reconstruct(&quant, i, 0.0).unwrap();
            assert_eq!(got, r);
            assert!((got - v).abs() <= 0.01);
        }
    }

    #[test]
    fn sink_escapes_out_of_range() {
        let quant = LinearQuantizer::new(1e-6, 4);
        let mut sink = CodeSink::with_capacity(2);
        let r = sink.push(&quant, 1000.0, 0.0);
        assert_eq!(r, 1000.0); // escaped verbatim
        assert_eq!(sink.escapes.len(), 1);
    }

    #[test]
    fn header_round_trip() {
        let mut out = Vec::new();
        write_header(&mut out, b"TEST", 10, 999, 1e-3);
        let mut pos = 0;
        let (m, n, eps) = read_header(&out, &mut pos, b"TEST").unwrap();
        assert_eq!((m, n, eps), (10, 999, 1e-3));
        assert!(read_header(&out, &mut 0, b"NOPE").is_err());
    }

    #[test]
    fn corrupt_blobs_error() {
        let quant = LinearQuantizer::new(0.01, RADIUS);
        let mut sink = CodeSink::with_capacity(10);
        for i in 0..10 {
            sink.push(&quant, i as f64, 0.0);
        }
        let mut blob = Vec::new();
        sink.finish(&mut blob);
        for cut in 0..blob.len() {
            let _ = CodeSource::parse(&blob[..cut], &mut 0, 10);
        }
        assert!(CodeSource::parse(&blob, &mut 0, 11).is_err());
    }
}
