//! SZ 2.x baseline: Lorenzo prediction + quantization + Huffman + LZ.
//!
//! SZ treats the buffer as an array and predicts each element from its
//! already-reconstructed neighbours (the Lorenzo stencil):
//!
//! * **1-D mode** — the buffer flattens to one stream; `p_i = d'_{i−1}`.
//! * **2-D mode** — the buffer is an `M × N` array (snapshots × particles);
//!   `p_{t,i} = d'_{t,i−1} + d'_{t−1,i} − d'_{t−1,i−1}`, exploiting space
//!   and time continuity at once. The paper's Table IV shows 2-D beating
//!   1-D by up to ~200 % on MD data, and uses 2-D in the evaluation.

use crate::common::resolve_eps;
use crate::common::{read_header, write_header, BaselineError, CodeSink, CodeSource, RADIUS};
use mdz_core::LinearQuantizer;
use mdz_core::{Codec, ErrorBound};

const MAGIC: &[u8; 4] = b"BSZ2";

/// Prediction dimensionality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sz2Mode {
    /// Flattened 1-D Lorenzo prediction.
    OneD,
    /// 2-D Lorenzo over the snapshot × particle array.
    TwoD,
}

/// The SZ2 baseline compressor.
#[derive(Debug, Clone)]
pub struct Sz2 {
    mode: Sz2Mode,
}

impl Sz2 {
    /// Creates the baseline in the given mode.
    pub fn new(mode: Sz2Mode) -> Self {
        Self { mode }
    }
}

impl Codec for Sz2 {
    fn name(&self) -> &'static str {
        match self.mode {
            Sz2Mode::OneD => "SZ2-1D",
            Sz2Mode::TwoD => "SZ2",
        }
    }

    fn reset(&mut self) {}

    fn compress_buffer(
        &mut self,
        snapshots: &[Vec<f64>],
        bound: ErrorBound,
    ) -> mdz_core::Result<Vec<u8>> {
        Ok(self.compress(snapshots, resolve_eps(bound, snapshots)))
    }

    fn decompress_buffer(&mut self, data: &[u8]) -> mdz_core::Result<Vec<Vec<f64>>> {
        Ok(self.decompress(data)?)
    }
}

impl Sz2 {
    fn compress(&mut self, snapshots: &[Vec<f64>], eps: f64) -> Vec<u8> {
        let m = snapshots.len();
        let n = snapshots[0].len();
        let quant = LinearQuantizer::new(eps, RADIUS);
        let mut sink = CodeSink::with_capacity(m * n);
        let mut out = Vec::new();
        write_header(&mut out, MAGIC, m, n, eps);
        out.push(match self.mode {
            Sz2Mode::OneD => 1,
            Sz2Mode::TwoD => 2,
        });
        match self.mode {
            Sz2Mode::OneD => {
                let mut prev = 0.0;
                for snap in snapshots {
                    for &v in snap {
                        prev = sink.push(&quant, v, prev);
                    }
                }
            }
            Sz2Mode::TwoD => {
                let mut prev_row: Vec<f64> = vec![0.0; n];
                let mut cur_row: Vec<f64> = vec![0.0; n];
                for (t, snap) in snapshots.iter().enumerate() {
                    for (i, &v) in snap.iter().enumerate() {
                        let left = if i == 0 { 0.0 } else { cur_row[i - 1] };
                        let up = if t == 0 { 0.0 } else { prev_row[i] };
                        let diag = if t == 0 || i == 0 { 0.0 } else { prev_row[i - 1] };
                        let pred = left + up - diag;
                        cur_row[i] = sink.push(&quant, v, pred);
                    }
                    std::mem::swap(&mut prev_row, &mut cur_row);
                }
            }
        }
        sink.finish(&mut out);
        out
    }

    fn decompress(&mut self, data: &[u8]) -> Result<Vec<Vec<f64>>, BaselineError> {
        let mut pos = 0;
        let (m, n, eps) = read_header(data, &mut pos, MAGIC)?;
        let mode = match data.get(pos).copied() {
            Some(1) => Sz2Mode::OneD,
            Some(2) => Sz2Mode::TwoD,
            _ => return Err(BaselineError::Corrupt("bad mode byte")),
        };
        pos += 1;
        let quant = LinearQuantizer::new(eps, RADIUS);
        let src = CodeSource::parse(data, &mut pos, m * n)?;
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(m);
        match mode {
            Sz2Mode::OneD => {
                let mut prev = 0.0;
                for t in 0..m {
                    let mut snap = Vec::with_capacity(n);
                    for i in 0..n {
                        prev = src.reconstruct(&quant, t * n + i, prev)?;
                        snap.push(prev);
                    }
                    out.push(snap);
                }
            }
            Sz2Mode::TwoD => {
                for t in 0..m {
                    let mut snap = vec![0.0; n];
                    for i in 0..n {
                        let left = if i == 0 { 0.0 } else { snap[i - 1] };
                        let up = if t == 0 { 0.0 } else { out[t - 1][i] };
                        let diag = if t == 0 || i == 0 { 0.0 } else { out[t - 1][i - 1] };
                        snap[i] = src.reconstruct(&quant, t * n + i, left + up - diag)?;
                    }
                    out.push(snap);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_round_trip, lattice_buffer, smooth_buffer};

    #[test]
    fn both_modes_round_trip() {
        let snaps = lattice_buffer(8, 200, 1e-4, 11);
        for mode in [Sz2Mode::OneD, Sz2Mode::TwoD] {
            let mut c = Sz2::new(mode);
            check_round_trip(&mut c, &snaps, 1e-3);
        }
    }

    #[test]
    fn two_d_beats_one_d_on_smooth_data() {
        let snaps = smooth_buffer(10, 400, 3);
        let s1 = check_round_trip(&mut Sz2::new(Sz2Mode::OneD), &snaps, 1e-3);
        let s2 = check_round_trip(&mut Sz2::new(Sz2Mode::TwoD), &snaps, 1e-3);
        assert!(s2 < s1, "2D {s2} should beat 1D {s1} (Table IV shape)");
    }

    #[test]
    fn single_snapshot_and_single_particle() {
        for mode in [Sz2Mode::OneD, Sz2Mode::TwoD] {
            check_round_trip(&mut Sz2::new(mode), &[vec![1.0, 2.0, 3.0]], 1e-4);
            check_round_trip(&mut Sz2::new(mode), &[vec![1.0], vec![1.1], vec![0.9]], 1e-4);
        }
    }

    #[test]
    fn non_finite_values() {
        let mut snaps = lattice_buffer(3, 50, 0.0, 5);
        snaps[1][3] = f64::NAN;
        check_round_trip(&mut Sz2::new(Sz2Mode::TwoD), &snaps, 1e-3);
    }

    #[test]
    fn corrupt_input_errors() {
        let mut c = Sz2::new(Sz2Mode::TwoD);
        let blob = c.compress(&lattice_buffer(3, 50, 0.0, 5), 1e-3);
        for cut in [0, 3, blob.len() / 2] {
            assert!(c.decompress(&blob[..cut]).is_err());
        }
    }
}
