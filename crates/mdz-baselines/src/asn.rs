//! ASN baseline: adjacent-snapshot prediction for N-body data.
//!
//! Li et al. (IEEE Big Data 2018) compress N-body snapshots by predicting
//! each particle from its value in the previous snapshot (optionally
//! velocity-corrected — not applicable to MD, as the paper argues, because
//! MD velocities decorrelate within femtoseconds). The first snapshot of a
//! buffer falls back to in-snapshot Lorenzo prediction. Residuals go
//! through the standard quantization + Huffman + LZ tail.

use crate::common::resolve_eps;
use crate::common::{read_header, write_header, BaselineError, CodeSink, CodeSource, RADIUS};
use mdz_core::LinearQuantizer;
use mdz_core::{Codec, ErrorBound};

const MAGIC: &[u8; 4] = b"BASN";

/// The ASN-style baseline compressor.
#[derive(Debug, Clone, Default)]
pub struct Asn;

impl Asn {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

impl Codec for Asn {
    fn name(&self) -> &'static str {
        "ASN"
    }

    fn reset(&mut self) {}

    fn compress_buffer(
        &mut self,
        snapshots: &[Vec<f64>],
        bound: ErrorBound,
    ) -> mdz_core::Result<Vec<u8>> {
        Ok(self.compress(snapshots, resolve_eps(bound, snapshots)))
    }

    fn decompress_buffer(&mut self, data: &[u8]) -> mdz_core::Result<Vec<Vec<f64>>> {
        Ok(self.decompress(data)?)
    }
}

impl Asn {
    fn compress(&mut self, snapshots: &[Vec<f64>], eps: f64) -> Vec<u8> {
        let m = snapshots.len();
        let n = snapshots[0].len();
        let quant = LinearQuantizer::new(eps, RADIUS);
        let mut out = Vec::new();
        write_header(&mut out, MAGIC, m, n, eps);
        let mut sink = CodeSink::with_capacity(m * n);
        let mut prev_recon = vec![0.0f64; n];
        let mut cur_recon = vec![0.0f64; n];
        for (t, snap) in snapshots.iter().enumerate() {
            for (i, &v) in snap.iter().enumerate() {
                let pred = if t == 0 {
                    if i == 0 {
                        0.0
                    } else {
                        cur_recon[i - 1]
                    }
                } else {
                    prev_recon[i]
                };
                cur_recon[i] = sink.push(&quant, v, pred);
            }
            std::mem::swap(&mut prev_recon, &mut cur_recon);
        }
        sink.finish(&mut out);
        out
    }

    fn decompress(&mut self, data: &[u8]) -> Result<Vec<Vec<f64>>, BaselineError> {
        let mut pos = 0;
        let (m, n, eps) = read_header(data, &mut pos, MAGIC)?;
        let quant = LinearQuantizer::new(eps, RADIUS);
        let src = CodeSource::parse(data, &mut pos, m * n)?;
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(m);
        for t in 0..m {
            let mut snap = vec![0.0f64; n];
            for i in 0..n {
                let pred = if t == 0 {
                    if i == 0 {
                        0.0
                    } else {
                        snap[i - 1]
                    }
                } else {
                    out[t - 1][i]
                };
                snap[i] = src.reconstruct(&quant, t * n + i, pred)?;
            }
            out.push(snap);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_round_trip, lattice_buffer, smooth_buffer};

    #[test]
    fn round_trips() {
        let mut c = Asn::new();
        check_round_trip(&mut c, &lattice_buffer(8, 150, 1e-4, 41), 1e-3);
        check_round_trip(&mut c, &smooth_buffer(8, 150, 42), 1e-3);
        check_round_trip(&mut c, &[vec![3.0, 4.0, 5.0]], 1e-4);
    }

    #[test]
    fn excels_on_temporally_smooth_data() {
        let snaps = smooth_buffer(10, 500, 43);
        let size = check_round_trip(&mut Asn::new(), &snaps, 1e-3);
        // After the first snapshot, residuals are near zero.
        assert!(size < 10 * 500, "expected sub-byte-per-value: {size}");
    }

    #[test]
    fn non_finite_values() {
        let mut snaps = lattice_buffer(4, 60, 0.0, 44);
        snaps[2][10] = f64::NAN;
        check_round_trip(&mut Asn::new(), &snaps, 1e-3);
    }

    #[test]
    fn corrupt_input_errors() {
        let mut c = Asn::new();
        let blob = c.compress(&lattice_buffer(3, 30, 0.0, 45), 1e-3);
        assert!(c.decompress(&blob[..blob.len() / 2]).is_err());
    }
}
