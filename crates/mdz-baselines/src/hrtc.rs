//! HRTC baseline: piecewise-linear trajectory approximation.
//!
//! HRTC (Huwald et al., J. Comput. Chem. 2016) represents each particle's
//! trajectory as line segments fitted under the error bound, with
//! error-controlled quantization of the segment parameters and a
//! variable-length integer encoding. We implement the swing-filter variant:
//! a segment grows while some slope keeps every point within tolerance; the
//! anchor and slope are then snapped to error-budgeted grids.
//!
//! Error budget: the filter runs at `τ = eps/2` against the *quantized*
//! anchor, and the slope grid is `eps/(4·len)` so the quantized line stays
//! within `eps/2 + eps/4 < eps` of every point.

use crate::common::resolve_eps;
use crate::common::{read_header, write_header, BaselineError};
use mdz_core::{Codec, ErrorBound};
use mdz_entropy::{read_ivarint, read_uvarint, write_ivarint, write_uvarint};
use mdz_lossless::lz77;

const MAGIC: &[u8; 4] = b"HRTC";
/// Anchor grid indices beyond this escape to raw segments.
const MAX_GRID: f64 = (1i64 << 60) as f64;

/// The HRTC-style baseline compressor.
#[derive(Debug, Clone, Default)]
pub struct Hrtc;

impl Hrtc {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self
    }
}

/// One encoded segment of a particle's time series.
enum Segment {
    /// `len ≥ 1` points on the line `anchor + slope·k` (grids applied).
    Line { len: usize, anchor_idx: i64, slope_idx: i64 },
    /// One verbatim value (non-finite or out-of-grid).
    Raw(f64),
}

/// Greedy swing-filter segmentation of one series.
fn segment_series(series: &[f64], eps: f64) -> Vec<Segment> {
    let tau = eps / 2.0;
    let anchor_grid = eps / 4.0;
    let mut segs = Vec::new();
    let mut t = 0;
    while t < series.len() {
        let v0 = series[t];
        let a_idx_f = (v0 / anchor_grid).round();
        if !v0.is_finite() || !a_idx_f.is_finite() || a_idx_f.abs() > MAX_GRID {
            segs.push(Segment::Raw(v0));
            t += 1;
            continue;
        }
        let anchor_idx = a_idx_f as i64;
        let anchor = anchor_idx as f64 * anchor_grid;
        if (anchor - v0).abs() > tau {
            // Pathological magnitude where the grid collapses; store raw.
            segs.push(Segment::Raw(v0));
            t += 1;
            continue;
        }
        // Grow the segment while slope bounds stay non-empty.
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        let mut len = 1;
        while t + len < series.len() {
            let v = series[t + len];
            if !v.is_finite() {
                break;
            }
            let k = len as f64;
            let new_lo = lo.max((v - tau - anchor) / k);
            let new_hi = hi.min((v + tau - anchor) / k);
            if new_lo > new_hi {
                break;
            }
            lo = new_lo;
            hi = new_hi;
            len += 1;
        }
        let slope_idx = if len == 1 {
            0
        } else {
            let mid = 0.5 * (lo.max(-1e300) + hi.min(1e300));
            let slope_grid = eps / (4.0 * (len - 1) as f64);
            let idx_f = (mid / slope_grid).round();
            if !idx_f.is_finite() || idx_f.abs() > MAX_GRID {
                // Give up on the line; emit the anchor point alone.
                len = 1;
                0
            } else {
                // The quantized slope must still satisfy the filter bounds;
                // the grid is fine enough that rounding stays inside.
                idx_f as i64
            }
        };
        segs.push(Segment::Line { len, anchor_idx, slope_idx });
        t += len;
    }
    segs
}

impl Codec for Hrtc {
    fn name(&self) -> &'static str {
        "HRTC"
    }

    fn reset(&mut self) {}

    fn compress_buffer(
        &mut self,
        snapshots: &[Vec<f64>],
        bound: ErrorBound,
    ) -> mdz_core::Result<Vec<u8>> {
        Ok(self.compress(snapshots, resolve_eps(bound, snapshots)))
    }

    fn decompress_buffer(&mut self, data: &[u8]) -> mdz_core::Result<Vec<Vec<f64>>> {
        Ok(self.decompress(data)?)
    }
}

impl Hrtc {
    fn compress(&mut self, snapshots: &[Vec<f64>], eps: f64) -> Vec<u8> {
        let m = snapshots.len();
        let n = snapshots[0].len();
        let mut out = Vec::new();
        write_header(&mut out, MAGIC, m, n, eps);
        let mut inner = Vec::new();
        let mut series = Vec::with_capacity(m);
        for p in 0..n {
            series.clear();
            for snap in snapshots {
                series.push(snap[p]);
            }
            let segs = segment_series(&series, eps);
            write_uvarint(&mut inner, segs.len() as u64);
            for seg in &segs {
                match *seg {
                    Segment::Line { len, anchor_idx, slope_idx } => {
                        // Tag: (len << 1) | 0.
                        write_uvarint(&mut inner, (len as u64) << 1);
                        write_ivarint(&mut inner, anchor_idx);
                        if len > 1 {
                            write_ivarint(&mut inner, slope_idx);
                        }
                    }
                    Segment::Raw(v) => {
                        write_uvarint(&mut inner, (1u64 << 1) | 1);
                        inner.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        let payload = lz77::compress(&inner, lz77::Level::Default);
        write_uvarint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out
    }

    #[allow(clippy::needless_range_loop)] // p indexes a column across rows
    fn decompress(&mut self, data: &[u8]) -> Result<Vec<Vec<f64>>, BaselineError> {
        let mut pos = 0;
        let (m, n, eps) = read_header(data, &mut pos, MAGIC)?;
        let anchor_grid = eps / 4.0;
        let payload_len = read_uvarint(data, &mut pos)? as usize;
        let end = pos
            .checked_add(payload_len)
            .filter(|&e| e <= data.len())
            .ok_or(BaselineError::Corrupt("truncated payload"))?;
        let inner = lz77::decompress(&data[pos..end])?;
        let mut ipos = 0;
        let mut out = vec![vec![0.0f64; n]; m];
        for p in 0..n {
            let n_segs = read_uvarint(&inner, &mut ipos)? as usize;
            if n_segs > m {
                return Err(BaselineError::Corrupt("too many segments"));
            }
            let mut t = 0usize;
            for _ in 0..n_segs {
                let tag = read_uvarint(&inner, &mut ipos)?;
                let raw = tag & 1 == 1;
                let len = (tag >> 1) as usize;
                if len == 0 || t + len > m {
                    return Err(BaselineError::Corrupt("segment overruns series"));
                }
                if raw {
                    let bytes = inner
                        .get(ipos..ipos + 8)
                        .ok_or(BaselineError::Corrupt("truncated raw segment"))?;
                    ipos += 8;
                    out[t][p] = f64::from_le_bytes(bytes.try_into().unwrap());
                    t += 1;
                } else {
                    let anchor_idx = read_ivarint(&inner, &mut ipos)?;
                    let anchor = anchor_idx as f64 * anchor_grid;
                    let slope = if len > 1 {
                        let slope_idx = read_ivarint(&inner, &mut ipos)?;
                        let slope_grid = eps / (4.0 * (len - 1) as f64);
                        slope_idx as f64 * slope_grid
                    } else {
                        0.0
                    };
                    for k in 0..len {
                        out[t + k][p] = anchor + slope * k as f64;
                    }
                    t += len;
                }
            }
            if t != m {
                return Err(BaselineError::Corrupt("segments do not cover series"));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{check_round_trip, lattice_buffer, smooth_buffer};

    #[test]
    fn round_trips() {
        let mut c = Hrtc::new();
        check_round_trip(&mut c, &lattice_buffer(10, 150, 1e-4, 31), 1e-3);
        check_round_trip(&mut c, &smooth_buffer(10, 150, 32), 1e-3);
        check_round_trip(&mut c, &[vec![1.0, 2.0]], 1e-4);
    }

    #[test]
    fn linear_trajectories_collapse_to_single_segments() {
        // Perfectly linear in time: one segment per particle.
        let snaps: Vec<Vec<f64>> =
            (0..20).map(|t| (0..100).map(|i| i as f64 + t as f64 * 0.01).collect()).collect();
        let mut c = Hrtc::new();
        let size = check_round_trip(&mut c, &snaps, 1e-3);
        assert!(size < 20 * 100 * 2, "linear data should be tiny: {size}");
    }

    #[test]
    fn segmentation_respects_bound_analytically() {
        let series = [0.0, 0.1, 0.25, 0.2, 5.0, 5.1, 5.2];
        let eps = 0.15;
        let segs = segment_series(&series, eps);
        // Replay reconstruction and check the bound.
        let anchor_grid = eps / 4.0;
        let mut t = 0;
        for seg in &segs {
            match *seg {
                Segment::Raw(v) => {
                    assert_eq!(v.to_bits(), series[t].to_bits());
                    t += 1;
                }
                Segment::Line { len, anchor_idx, slope_idx } => {
                    let anchor = anchor_idx as f64 * anchor_grid;
                    let slope = if len > 1 {
                        slope_idx as f64 * (eps / (4.0 * (len - 1) as f64))
                    } else {
                        0.0
                    };
                    for k in 0..len {
                        let r = anchor + slope * k as f64;
                        assert!((r - series[t + k]).abs() <= eps, "{r} vs {}", series[t + k]);
                    }
                    t += len;
                }
            }
        }
        assert_eq!(t, series.len());
    }

    #[test]
    fn non_finite_values_become_raw_segments() {
        let mut snaps = lattice_buffer(6, 30, 0.0, 33);
        snaps[2][5] = f64::NAN;
        snaps[4][5] = f64::INFINITY;
        check_round_trip(&mut Hrtc::new(), &snaps, 1e-3);
    }

    #[test]
    fn corrupt_input_errors() {
        let mut c = Hrtc::new();
        let blob = c.compress(&lattice_buffer(5, 30, 0.0, 34), 1e-3);
        for cut in [0, 7, blob.len() / 2] {
            assert!(c.decompress(&blob[..cut]).is_err());
        }
    }
}
