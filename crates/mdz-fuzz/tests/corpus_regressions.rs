//! Replays the repository's `corpus/` of hostile-input regression seeds.
//!
//! Every `corpus/*.bin` file is a small crafted input that once exercised
//! (or still exercises) a dangerous decode path: forged length fields,
//! over-subscribed code tables, checksum mismatches, truncated containers.
//! The filename prefix selects the decode entry point; every seed must
//! produce a typed error — never a panic, never an allocation beyond the
//! replay budget.
//!
//! Regenerate the seeds with `MDZ_BLESS_CORPUS=1 cargo test -p mdz-fuzz
//! --test corpus_regressions` (the replay then runs against the fresh
//! files). New regression inputs found by the fuzz campaigns should be
//! added here with a matching prefix.

use std::fs;
use std::path::{Path, PathBuf};

use mdz_core::checksum::{crc32, fnv1a64};
use mdz_core::format::{read_frame, write_frame, FLAGS_OFFSET, FLAG_BIT_ADAPTIVE, MAGIC};
use mdz_core::traj::TrajectoryDecompressor;
use mdz_core::{
    Codec, Compressor, DecodeLimits, Decompressor, ErrorBound, Frame, MdzCodec, MdzConfig, Method,
    QuantizerKind,
};
use mdz_entropy::{
    huffman_decode_at_limited, huffman_encode, range_decode_at_limited, range_encode, read_uvarint,
    write_uvarint, StreamLimits,
};
use mdz_fuzz::CountingAlloc;
use mdz_lossless::{lz77, rle};
use mdz_store::{
    append_store, write_store, ArchiveIndex, FaultIo, FaultMode, FaultPlan, FrameDecoder, MemIo,
    Precision, ReaderOptions, Request, StoreOptions, StoreReader,
};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Replay allocation budget per seed — orders of magnitude below what the
/// forged length fields in these seeds request.
const BUDGET: usize = 64 << 20;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..").join("corpus")
}

fn tight_limits() -> DecodeLimits {
    DecodeLimits {
        max_snapshots: 1 << 10,
        max_values_per_snapshot: 1 << 16,
        max_total_values: 1 << 18,
        max_inner_bytes: 1 << 22,
    }
}

/// Dispatches a seed to its decode entry point; returns whether it errored.
fn replay(name: &str, bytes: &[u8]) -> bool {
    let stream_limits = StreamLimits::with_max_items(1 << 16);
    if name.starts_with("huffman_") {
        huffman_decode_at_limited(bytes, &mut 0, &stream_limits).is_err()
    } else if name.starts_with("range_") {
        range_decode_at_limited(bytes, &mut 0, &stream_limits).is_err()
    } else if name.starts_with("lz77_") {
        let mut out = Vec::new();
        lz77::decompress_into_limited(bytes, &mut out, &StreamLimits::with_max_items(1 << 20))
            .is_err()
    } else if name.starts_with("rle_") {
        rle::decompress_limited(bytes, &stream_limits).is_err()
    } else if name.starts_with("block_") {
        Decompressor::with_limits(tight_limits()).decompress_block(bytes).is_err()
    } else if name.starts_with("frame_") {
        read_frame(bytes, &mut 0).is_err()
    } else if name.starts_with("traj_") {
        let axes: [Box<dyn Codec>; 3] = std::array::from_fn(|_| {
            Box::new(MdzCodec::default().with_decode_limits(tight_limits())) as Box<dyn Codec>
        });
        TrajectoryDecompressor::from_codecs(axes).decompress_buffer(bytes).is_err()
    } else if name.starts_with("fault_append_") {
        // Torn-append seeds carry a dual obligation: the strict open must
        // reject the file, AND the recovery scan must find the last valid
        // footer and read every frame it published.
        let opts = ReaderOptions { cache_epochs: 2, limits: tight_limits() };
        let strict_rejects = StoreReader::with_options(bytes.to_vec(), opts)
            .and_then(|r| {
                let n = r.index().n_frames;
                r.read_frames(0..n)
            })
            .is_err();
        let recovers = StoreReader::recover(bytes.to_vec())
            .and_then(|(r, _)| {
                let n = r.index().n_frames;
                r.read_frames(0..n)
            })
            .is_ok();
        strict_rejects && recovers
    } else if name.starts_with("live_append_") {
        // Live-ingest seeds: images a tailing reader may be handed while a
        // remote writer is appending (or after one crashed). Same dual
        // obligation as fault_append_, plus the live-reader one: a reader
        // that recovered the image and then *refreshes* from the very same
        // hostile bytes must see a no-op — never a regression, never an
        // error, and every published frame must decode.
        let opts = ReaderOptions { cache_epochs: 2, limits: tight_limits() };
        let strict_rejects = StoreReader::with_options(bytes.to_vec(), opts)
            .and_then(|r| {
                let n = r.index().n_frames;
                r.read_frames(0..n)
            })
            .is_err();
        let live_ok = StoreReader::recover(bytes.to_vec())
            .and_then(|(r, _)| {
                let n0 = r.index().n_frames;
                let report = r.refresh(bytes.to_vec())?;
                let frames = r.read_frames(0..report.n_frames)?;
                Ok(report.n_frames >= n0 && frames.len() == report.n_frames)
            })
            .unwrap_or(false);
        strict_rejects && live_ok
    } else if name.starts_with("net_") {
        // The event engine's incremental request framing, fed one byte at
        // a time (the worst-case trickle). Complete frames are parsed as
        // requests; the seed must surface a typed error somewhere in the
        // pipeline — an oversized length prefix (rejected before any
        // allocation for the announced body), a request body whose header
        // lies about its payload, or a stream that ends mid-frame (the
        // truncated tail the server classifies as malformed at EOF).
        let mut dec = FrameDecoder::new(1 << 16);
        let mut errored = false;
        'feed: for b in bytes {
            dec.push(std::slice::from_ref(b));
            loop {
                match dec.next_frame() {
                    Ok(Some(body)) => {
                        if Request::parse(&body).is_err() {
                            errored = true;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        errored = true;
                        break 'feed;
                    }
                }
            }
        }
        errored || dec.has_partial()
    } else if name.starts_with("store_") {
        // Open parses the header + footer index; the read walks the block
        // records (FNV oracle) and the epoch decoder, so seeds may fail at
        // either stage.
        let opts = ReaderOptions { cache_epochs: 2, limits: tight_limits() };
        StoreReader::with_options(bytes.to_vec(), opts)
            .and_then(|r| {
                let n = r.index().n_frames;
                r.read_frames(0..n)
            })
            .is_err()
    } else {
        panic!("corpus file {name} has no known prefix");
    }
}

/// Writes the seed corpus. Each entry is deterministic, so blessing twice
/// produces byte-identical files.
fn bless(dir: &Path) {
    fs::create_dir_all(dir).unwrap();
    let put = |name: &str, bytes: Vec<u8>| fs::write(dir.join(name), bytes).unwrap();

    // A forged symbol count turned into an allocation request.
    let valid = huffman_encode(&(0..64u32).map(|i| i % 7).collect::<Vec<_>>());
    let mut pos = 0;
    read_uvarint(&valid, &mut pos).unwrap();
    let mut forged = Vec::new();
    write_uvarint(&mut forged, u64::MAX);
    forged.extend_from_slice(&valid[pos..]);
    put("huffman_forged_count.bin", forged);

    // Three length-1 codes: violates the Kraft inequality.
    let mut b = Vec::new();
    write_uvarint(&mut b, 4); // symbol count
    write_uvarint(&mut b, 3); // distinct symbols
    for (delta, len) in [(0u64, 1u8), (1, 1), (1, 1)] {
        write_uvarint(&mut b, delta);
        b.push(len);
    }
    write_uvarint(&mut b, 1); // payload length
    b.push(0);
    put("huffman_oversubscribed.bin", b);

    // Lengths {1, 3, 3} leave unassigned bit patterns: incomplete table.
    let mut b = Vec::new();
    write_uvarint(&mut b, 4);
    write_uvarint(&mut b, 3);
    for (delta, len) in [(0u64, 1u8), (1, 3), (1, 3)] {
        write_uvarint(&mut b, delta);
        b.push(len);
    }
    write_uvarint(&mut b, 1);
    b.push(0);
    put("huffman_incomplete.bin", b);

    // A zero delta duplicates the previous symbol.
    let mut b = Vec::new();
    write_uvarint(&mut b, 4);
    write_uvarint(&mut b, 2);
    for (delta, len) in [(5u64, 1u8), (0, 1)] {
        write_uvarint(&mut b, delta);
        b.push(len);
    }
    write_uvarint(&mut b, 1);
    b.push(0);
    put("huffman_duplicate_symbol.bin", b);

    // Forged range-coder symbol count.
    let valid = range_encode(&(0..64u32).map(|i| i % 5).collect::<Vec<_>>());
    let mut pos = 0;
    read_uvarint(&valid, &mut pos).unwrap();
    let mut forged = Vec::new();
    write_uvarint(&mut forged, u64::MAX);
    forged.extend_from_slice(&valid[pos..]);
    put("range_forged_count.bin", forged);

    // A model claiming 1000 entries in a 2-byte body.
    let mut b = Vec::new();
    write_uvarint(&mut b, 10); // symbol count
    b.push(0); // tag 0: full model follows
    write_uvarint(&mut b, 1000); // model entries
    b.extend_from_slice(&[1, 1]);
    put("range_giant_model.bin", b);

    // Forged LZ77 raw (decompressed) length.
    let valid = lz77::compress(&vec![0x42u8; 2000], lz77::Level::Default);
    let mut pos = 0;
    read_uvarint(&valid, &mut pos).unwrap();
    let mut forged = Vec::new();
    write_uvarint(&mut forged, u64::MAX);
    forged.extend_from_slice(&valid[pos..]);
    put("lz77_forged_rawlen.bin", forged);

    // An RLE stream declaring a u64::MAX output length.
    let mut b = Vec::new();
    write_uvarint(&mut b, u64::MAX);
    for _ in 0..8 {
        write_uvarint(&mut b, 255);
        b.push(0xAA);
    }
    put("rle_bomb.bin", b);

    // A valid VQ block whose snapshot count is forged to 2^30.
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Vq);
    let snaps: Vec<Vec<f64>> = (0..6)
        .map(|t| (0..200).map(|i| (i % 10) as f64 * 2.5 + t as f64 * 1e-4).collect())
        .collect();
    let mut blk = Compressor::new(cfg).compress_buffer(&snaps).unwrap();
    let mut forged_m = Vec::new();
    write_uvarint(&mut forged_m, 1 << 30);
    // Header layout: magic(4) + version(1) + method(1) + flags(1), then M.
    for (i, byte) in forged_m.iter().enumerate() {
        blk[7 + i] = *byte;
    }
    put("block_forged_snapshots.bin", blk);

    // --- Bit-adaptive (version 2) blocks: the version/flag redundancy and
    // the per-region width table are enforced on every decode path.
    let ba_cfg = MdzConfig::new(ErrorBound::Absolute(1e-4))
        .with_method(Method::Vq)
        .with_quantizer(QuantizerKind::BitAdaptive { chunk: 4 });
    let ba = Compressor::new(ba_cfg).compress_buffer(&snaps).unwrap();

    // A v1 block with the bit-adaptive flag forged on: the version/flag
    // cross-check must reject it before any stage trusts the flag.
    let v1_cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Vq);
    let mut forged = Compressor::new(v1_cfg).compress_buffer(&snaps).unwrap();
    forged[FLAGS_OFFSET] |= FLAG_BIT_ADAPTIVE;
    put("block_ba_forged_flag.bin", forged);

    // A bit-adaptive block with its flag stripped (version byte still 2):
    // the same cross-check fires in the other direction.
    let mut stripped = ba.clone();
    stripped[FLAGS_OFFSET] &= !FLAG_BIT_ADAPTIVE;
    put("block_ba_stripped_flag.bin", stripped);

    // Version bumped past the known range on an otherwise valid BA block.
    let mut vers = ba.clone();
    vers[MAGIC.len()] = 3;
    put("block_ba_wrong_version.bin", vers);

    // Truncated mid-payload: the width table / packed codes run dry.
    put("block_ba_truncated.bin", ba[..ba.len() * 3 / 4].to_vec());

    // A framed payload with its last byte flipped: checksum mismatch.
    let mut fr = Vec::new();
    write_frame(b"frame payload under test", &mut fr).unwrap();
    let last = fr.len() - 1;
    fr[last] ^= 0xFF;
    put("frame_bad_crc.bin", fr);

    // A trajectory container whose first axis length points past the end.
    let mut b = b"MDZT".to_vec();
    write_uvarint(&mut b, 1000);
    put("traj_truncated_axis.bin", b);

    // --- Network framing: the event engine's incremental request decoder
    // (`net_` seeds replay against `FrameDecoder` + `Request::parse`).
    let frame_req = |req: &Request| -> Vec<u8> {
        let body = req.encode();
        let mut out = (body.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(&body);
        out
    };

    // A length prefix announcing a 4 GiB body: rejected from the four
    // prefix bytes alone, before any buffer for the body exists.
    let mut b = u32::MAX.to_le_bytes().to_vec();
    b.extend_from_slice(&[0u8; 16]);
    put("net_oversized_len.bin", b);

    // A correctly framed APPEND whose header claims 2^40 frames in a
    // 42-byte body: the framing layer accepts it, so request parsing must
    // reject the count/length disagreement before allocating frames.
    let mut body = Request::Append {
        precision: Precision::F64,
        frames: vec![Frame::new(vec![1.0], vec![2.0], vec![3.0])],
    }
    .encode();
    body[2..10].copy_from_slice(&(1u64 << 40).to_le_bytes());
    let mut framed = (body.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&body);
    put("net_append_forged_count.bin", framed);

    // A valid GET cut mid-body: the stream ends holding a partial frame —
    // the truncated tail the server classifies as malformed at EOF.
    let get = frame_req(&Request::Get { start: 3, end: 9 });
    put("net_trickle_truncated.bin", get[..get.len() - 5].to_vec());

    // Two complete requests coalesced ahead of an oversized prefix: both
    // must decode and parse before the sticky framing error fires.
    let mut b = frame_req(&Request::Info);
    b.extend_from_slice(&frame_req(&Request::Stats));
    b.extend_from_slice(&(1u32 << 30).to_le_bytes());
    b.extend_from_slice(&[0xAB; 8]);
    put("net_coalesced_oversized.bin", b);

    // --- Indexed store archives (version 2): footer and keyframe tampers.
    let store_frames: Vec<Frame> = (0..10)
        .map(|t| {
            let axis =
                |p: usize| (0..40).map(|i| ((i * p) % 9) as f64 * 1.5 + t as f64 * 1e-4).collect();
            Frame::new(axis(1), axis(2), axis(3))
        })
        .collect();
    let mut sopts =
        StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Vq));
    sopts.buffer_size = 3;
    sopts.epoch_interval = 2;
    let valid = write_store(&store_frames, &[], &[], &sopts).unwrap();
    let trailer = valid.len() - 17; // crc32(4) + payload_len(8) + version(1) + magic(4)

    // Footer CRC flipped: the index must be rejected before it is trusted.
    let mut bad = valid.clone();
    bad[trailer] ^= 0xFF;
    put("store_footer_bad_crc.bin", bad);

    // Footer frame count forged to u64::MAX *with a recomputed CRC*, so the
    // forged count survives the checksum and must be stopped by the
    // block-count cross-check instead of becoming an allocation request.
    let payload_len =
        u64::from_le_bytes(valid[trailer + 4..trailer + 12].try_into().unwrap()) as usize;
    let payload_start = trailer - payload_len;
    let mut pos = payload_start;
    read_uvarint(&valid, &mut pos).unwrap(); // skip the real frame count
    let mut payload = Vec::new();
    write_uvarint(&mut payload, u64::MAX);
    payload.extend_from_slice(&valid[pos..trailer]);
    let mut forged = valid[..payload_start].to_vec();
    forged.extend_from_slice(&payload);
    forged.extend_from_slice(&crc32(&payload).to_le_bytes());
    forged.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    forged.push(2); // footer version
    forged.extend_from_slice(b"MDZI");
    put("store_footer_forged_count.bin", forged);

    // Trailer cut mid-way: too short to even locate the footer.
    put("store_truncated_footer.bin", valid[..valid.len() - 9].to_vec());

    // One bit in a block record body: the FNV record checksum must catch it.
    let index = ArchiveIndex::parse(&valid).unwrap();
    let rec = index.blocks[0].offset;
    let mut pos = rec;
    let rec_len = read_uvarint(&valid, &mut pos).unwrap() as usize;
    let body = pos + 8; // past the stored checksum
    let mut bad = valid.clone();
    bad[body + 4] ^= 0x01;
    put("store_block_bad_checksum.bin", bad);

    // Keyframe container with a forged axis length *and* a recomputed record
    // checksum: hostile bytes that reach the epoch decoder itself. The
    // container opens with "MDZT"; the axis-0 length uvarint right after it
    // is replaced with ~2^35, which must fail the bounds check rather than
    // turn into an allocation.
    let mut bad = valid.clone();
    bad[body + 4..body + 9].copy_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0x7F]);
    let sum = fnv1a64(&bad[body..body + rec_len]);
    bad[pos..pos + 8].copy_from_slice(&sum.to_le_bytes());
    put("store_keyframe_forged_axis.bin", bad);

    // --- Torn appends: archives whose tail died mid-append. The strict
    // open must reject them, but `StoreReader::recover` must walk back to
    // the last durable footer and serve its frames in full.
    let mut aopts =
        StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Vq));
    aopts.buffer_size = 2;
    aopts.epoch_interval = 2;
    let appendable = write_store(&store_frames, &[], &[], &aopts).unwrap();
    let pre_len = appendable.len();
    let mut io = MemIo::new(appendable);
    append_store(&mut io, &store_frames[..4], &aopts).unwrap();
    let appended = io.into_bytes();

    // Cut inside the appended footer's trailer: the new generation was
    // never published, so recovery lands on the pre-append footer.
    put("fault_append_torn_footer.bin", appended[..appended.len() - 9].to_vec());

    // Cut mid-way through the appended block records.
    let cut = pre_len + (appended.len() - pre_len) / 3;
    put("fault_append_partial_block.bin", appended[..cut].to_vec());

    // A completed append followed by tail garbage (a crashed *next* append
    // that never reached its footer): recovery keeps the whole append.
    let mut garbage = appended.clone();
    garbage.extend_from_slice(b"\xde\xad\xbe\xefscratch bytes from a dead append\x00\x00");
    put("fault_append_garbage_tail.bin", garbage);

    // --- Live ingest: hostile images a tailing reader can be handed while
    // a remote writer appends (or after one crashed mid-append). Beyond
    // the strict-rejects/recover-serves dual obligation, the replay also
    // refreshes a recovered reader from these bytes and demands a no-op.
    let live_base = write_store(&store_frames, &[], &[], &aopts).unwrap();
    let mut io = MemIo::new(live_base.clone());
    append_store(&mut io, &store_frames[..4], &aopts).unwrap();
    let live_appended = io.into_bytes();

    // A remote (server-side) append whose footer write was torn by a
    // crash: the appended blocks are all present and synced, but the new
    // generation was never published. Recovery must land on the
    // pre-append footer. The fault plan is deterministic, so blessing is
    // reproducible; the footer write is the third-from-last storage op
    // (write footer · sync · — the final sync never runs).
    let n_ops = {
        let mut dry = FaultIo::new(live_base.clone());
        append_store(&mut dry, &store_frames[..4], &aopts).unwrap();
        dry.ops_performed()
    };
    let mut torn = FaultIo::new(live_base.clone());
    torn.set_plan(FaultPlan {
        fault_op: n_ops - 2,
        mode: FaultMode::TornWrite,
        seed: 0x6c69_7665_5f61_7070,
    });
    append_store(&mut torn, &store_frames[..4], &aopts).unwrap_err();
    put("live_append_torn_remote.bin", torn.disk_image());

    // A stale copy of the *pre-append* footer duplicated at the tail —
    // what a buggy writer replaying an old generation would leave — cut
    // inside its trailing magic. A complete duplicate would parse as a
    // valid regressed archive (which `StoreReader::refresh` rejects via
    // its monotone-extension check, unit-tested in mdz-store); the strict
    // open only rejects the truncated form, so that is what the corpus
    // pins. Recovery must serve the real (appended) footer before it.
    let base_trailer = live_base.len() - 17;
    let base_payload_len =
        u64::from_le_bytes(live_base[base_trailer + 4..base_trailer + 12].try_into().unwrap())
            as usize;
    let old_footer = &live_base[base_trailer - base_payload_len..];
    let mut dup = live_appended.clone();
    dup.extend_from_slice(&old_footer[..old_footer.len() - 2]);
    put("live_append_duplicate_footer.bin", dup);

    // Garbage tail containing a forged footer trailer — correct magic,
    // version byte, and a plausible payload length, but a bogus CRC. The
    // recovery scan must not be fooled by the embedded magic and must
    // keep walking back to the genuine footer.
    let mut fooled = live_appended.clone();
    fooled.extend_from_slice(b"leftover frames from a dead writer");
    fooled.extend_from_slice(&0xdead_beefu32.to_le_bytes()); // bogus crc32
    fooled.extend_from_slice(&24u64.to_le_bytes()); // plausible payload len
    fooled.push(2); // footer version
    fooled.extend_from_slice(b"MDZI");
    put("live_append_garbage_follower.bin", fooled);
}

#[test]
fn corpus_seeds_all_error_within_budget() {
    let dir = corpus_dir();
    if std::env::var("MDZ_BLESS_CORPUS").is_ok() {
        bless(&dir);
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| {
            panic!(
                "corpus directory {} unreadable ({e}); regenerate with MDZ_BLESS_CORPUS=1",
                dir.display()
            )
        })
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus is empty; regenerate with MDZ_BLESS_CORPUS=1");
    for path in entries {
        let name = path.file_name().unwrap().to_str().unwrap().to_owned();
        let bytes = fs::read(&path).unwrap();
        let live_before = CountingAlloc::live();
        CountingAlloc::reset_peak();
        let errored = replay(&name, &bytes);
        let used = CountingAlloc::peak().saturating_sub(live_before);
        assert!(errored, "{name}: crafted hostile input decoded successfully");
        assert!(used <= BUDGET, "{name}: replay allocated {used} bytes (budget {BUDGET})");
    }
}
