//! Deterministic fuzz campaigns over every MDZ decode entry point.
//!
//! Each campaign replays `mdz_fuzz::default_iters()` seeded mutations of
//! valid encoder output against one decode surface and asserts the hostile
//! triad: the decoder returns an error or a correct result, never panics,
//! and never allocates more than the campaign's byte budget (enforced by
//! the installed [`CountingAlloc`]). Failures reproduce exactly from the
//! (campaign seed, iteration) pair printed in the assertion message.
//!
//! Budgets are not tight bounds — they are "orders of magnitude below what
//! a forged length field could request" (a forged count can ask for 2^34
//! items; the budgets sit in the tens of megabytes, proportional to the
//! limits each campaign configures).

use std::sync::Mutex;

use mdz_core::format::{read_frame, write_frame, FLAGS_OFFSET, FLAG_BIT_ADAPTIVE};
use mdz_core::traj::TrajectoryDecompressor;
use mdz_core::{
    Codec, Compressor, DecodeLimits, Decompressor, EntropyStage, ErrorBound, Frame, MdzCodec,
    MdzConfig, Method, ParallelOptions, QuantizerKind, TrajReader, TrajectoryCompressor,
};
use mdz_entropy::{
    huffman_decode_at_limited, huffman_encode, range_decode_at_limited, range_encode, StreamLimits,
};
use mdz_fuzz::{default_iters, CountingAlloc, Mutator};
use mdz_lossless::{lz77, rle};
use mdz_store::{
    append_store, write_store, FrameDecoder, MemIo, Precision, ReaderOptions, Request,
    StoreOptions, StoreReader,
};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocator counters are process-global; campaigns serialize behind this.
static GATE: Mutex<()> = Mutex::new(());

const MB: usize = 1 << 20;

/// Runs `f` with the SIMD force-scalar override set to `force`, restoring
/// the previous state. Campaigns using this are already serialized behind
/// [`GATE`], so the process-global toggle cannot leak between tests.
fn with_force_scalar<T>(force: bool, f: impl FnOnce() -> T) -> T {
    let prev = mdz_entropy::kernel::force_scalar();
    mdz_entropy::kernel::set_force_scalar(force);
    let out = f();
    mdz_entropy::kernel::set_force_scalar(prev);
    out
}

/// Runs one campaign: `iters` mutations of the seed set, each fed to
/// `attempt` with the allocator watermark reset, asserting the decode
/// attempt stays within `budget` bytes of heap.
fn campaign(
    name: &'static str,
    seed: u64,
    seeds: &[Vec<u8>],
    budget: usize,
    mut attempt: impl FnMut(&mut Mutator, usize, &[u8]),
) {
    assert!(!seeds.is_empty());
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let mut mutator = Mutator::new(seed);
    let iters = default_iters();
    for i in 0..iters {
        let base_idx = mutator.rng().index(seeds.len());
        let input = mutator.mutate(&seeds[base_idx], seeds);
        let live_before = CountingAlloc::live();
        CountingAlloc::reset_peak();
        attempt(&mut mutator, base_idx, &input);
        let used = CountingAlloc::peak().saturating_sub(live_before);
        assert!(
            used <= budget,
            "{name}: seed {seed} iteration {i}: decode attempt allocated \
             {used} bytes (budget {budget})",
        );
    }
}

fn lattice(m: usize, n: usize) -> Vec<Vec<f64>> {
    (0..m).map(|t| (0..n).map(|i| (i % 10) as f64 * 2.5 + t as f64 * 1e-4).collect()).collect()
}

fn block(method: Method, entropy: EntropyStage) -> Vec<u8> {
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(method).with_entropy(entropy);
    Compressor::new(cfg).compress_buffer(&lattice(6, 200)).unwrap()
}

fn f32_block() -> Vec<u8> {
    let snaps: Vec<Vec<f32>> = (0..6)
        .map(|t| (0..200).map(|i| (i % 10) as f32 * 2.5 + t as f32 * 1e-3).collect())
        .collect();
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Vq);
    Compressor::new(cfg).compress_buffer_f32(&snaps).unwrap()
}

/// The budget configuration all block-level campaigns decode under: far
/// larger than the seed blocks need, far smaller than a forged header can
/// declare (default limits accept up to 2^34 values).
fn tight_limits() -> DecodeLimits {
    DecodeLimits {
        max_snapshots: 1 << 10,
        max_values_per_snapshot: 1 << 16,
        max_total_values: 1 << 18,
        max_inner_bytes: 1 << 22,
    }
}

#[test]
fn fuzz_huffman_decode() {
    let seeds = vec![
        huffman_encode(&(0..2000u32).map(|i| (i * 7) % 40).collect::<Vec<_>>()),
        huffman_encode(&vec![5u32; 300]),
        huffman_encode(&[]),
        huffman_encode(&(0..500u32).collect::<Vec<_>>()),
    ];
    let limits = StreamLimits::with_max_items(1 << 16);
    let refs: Vec<Vec<u32>> = seeds
        .iter()
        .map(|s| huffman_decode_at_limited(s, &mut 0, &limits).expect("seed decodes"))
        .collect();
    campaign("huffman", 0x4d445a01, &seeds.clone(), 8 * MB, |_, base_idx, input| {
        // Replay each mutation through both kernel arms: the batched SIMD
        // decode must agree with the scalar oracle on hostile input too —
        // same values on success, same error otherwise.
        let got = with_force_scalar(false, || huffman_decode_at_limited(input, &mut 0, &limits));
        let oracle = with_force_scalar(true, || huffman_decode_at_limited(input, &mut 0, &limits));
        assert_eq!(got, oracle, "batched huffman decode diverged from the scalar oracle");
        if input == seeds[base_idx] {
            assert_eq!(got.as_ref().ok(), Some(&refs[base_idx]), "identity input must decode");
        }
    });
}

#[test]
fn fuzz_range_decode() {
    let seeds = vec![
        range_encode(&(0..2000u32).map(|i| (i * 13) % 60).collect::<Vec<_>>()),
        range_encode(&vec![9u32; 400]),
        range_encode(&[]),
        range_encode(&(0..300u32).collect::<Vec<_>>()),
    ];
    let limits = StreamLimits::with_max_items(1 << 16);
    let refs: Vec<Vec<u32>> = seeds
        .iter()
        .map(|s| range_decode_at_limited(s, &mut 0, &limits).expect("seed decodes"))
        .collect();
    campaign("range", 0x4d445a02, &seeds.clone(), 8 * MB, |_, base_idx, input| {
        let got = range_decode_at_limited(input, &mut 0, &limits);
        if input == seeds[base_idx] {
            assert_eq!(got.as_ref().ok(), Some(&refs[base_idx]), "identity input must decode");
        }
    });
}

#[test]
fn fuzz_lz77_decompress() {
    let texty: Vec<u8> = (0..4000).map(|i| b"molecular dynamics "[i % 19]).collect();
    let noisy: Vec<u8> = (0..2000).map(|i| (i * 31 % 251) as u8).collect();
    let seeds = vec![
        lz77::compress(&texty, lz77::Level::Default),
        lz77::compress(&noisy, lz77::Level::Fast),
        lz77::compress(&[], lz77::Level::Default),
        lz77::compress(&vec![0u8; 3000], lz77::Level::High),
    ];
    let limits = StreamLimits::with_max_items(1 << 20);
    let refs: Vec<Vec<u8>> = seeds
        .iter()
        .map(|s| {
            let mut out = Vec::new();
            lz77::decompress_into_limited(s, &mut out, &limits).expect("seed decodes");
            out
        })
        .collect();
    campaign("lz77", 0x4d445a03, &seeds.clone(), 32 * MB, |_, base_idx, input| {
        let mut out = Vec::new();
        let got = lz77::decompress_into_limited(input, &mut out, &limits);
        // LZ77 decode is scalar either way (SIMD sits in the match finder);
        // round-trip the decoded bytes through both compressor arms so the
        // vectorized probe is also exercised on mutated, hostile-shaped data.
        if got.is_ok() {
            let auto = with_force_scalar(false, || lz77::compress(&out, lz77::Level::Default));
            let oracle = with_force_scalar(true, || lz77::compress(&out, lz77::Level::Default));
            assert_eq!(auto, oracle, "SIMD match probe diverged from the scalar oracle");
        }
        if input == seeds[base_idx] {
            assert!(got.is_ok() && out == refs[base_idx], "identity input must decode");
        }
    });
}

#[test]
fn fuzz_rle_decompress() {
    let seeds = vec![
        rle::compress(&vec![7u8; 5000]),
        rle::compress(&(0..1000).map(|i| (i / 100) as u8).collect::<Vec<_>>()),
        rle::compress(&[]),
    ];
    let limits = StreamLimits::with_max_items(1 << 20);
    let refs: Vec<Vec<u8>> =
        seeds.iter().map(|s| rle::decompress_limited(s, &limits).expect("seed decodes")).collect();
    campaign("rle", 0x4d445a04, &seeds.clone(), 8 * MB, |_, base_idx, input| {
        let got = rle::decompress_limited(input, &limits);
        if input == seeds[base_idx] {
            assert_eq!(got.as_ref().ok(), Some(&refs[base_idx]), "identity input must decode");
        }
    });
}

#[test]
fn fuzz_block_decode_f64() {
    let seeds = vec![
        block(Method::Vq, EntropyStage::Huffman),
        block(Method::Vqt, EntropyStage::Huffman),
        block(Method::Mt, EntropyStage::Huffman),
        block(Method::Mt2, EntropyStage::Huffman),
        block(Method::Vq, EntropyStage::Range),
        f32_block(),
    ];
    let limits = tight_limits();
    // First-in-stream blocks of every method decode with a fresh decompressor.
    let ok: Vec<bool> = seeds
        .iter()
        .map(|s| Decompressor::with_limits(limits).decompress_block(s).is_ok())
        .collect();
    assert!(ok.iter().all(|&b| b));
    campaign("block-f64", 0x4d445a05, &seeds.clone(), 128 * MB, |_, base_idx, input| {
        // Both kernel arms must agree on every mutated block: identical
        // reconstructions when the block decodes, identical error otherwise.
        let got =
            with_force_scalar(false, || Decompressor::with_limits(limits).decompress_block(input));
        let oracle =
            with_force_scalar(true, || Decompressor::with_limits(limits).decompress_block(input));
        // Compare reconstructions as bit patterns: a mutated escape value
        // can legitimately decode to NaN, which `==` would treat as a
        // divergence even when both arms produced identical bytes.
        let bits = |r: &Result<Vec<Vec<f64>>, mdz_core::MdzError>| {
            r.as_ref().map_err(Clone::clone).map(|snaps| {
                snaps
                    .iter()
                    .map(|s| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>())
                    .collect::<Vec<_>>()
            })
        };
        assert_eq!(bits(&got), bits(&oracle), "SIMD block decode diverged from the scalar oracle");
        if input == seeds[base_idx] {
            assert!(got.is_ok(), "identity input must decode");
        }
    });
}

/// Values whose step magnitudes span decades (so the per-chunk width
/// table is fully exercised) plus sparse huge outliers that overflow even
/// the bit-adaptive cap and land in the escape list.
fn spiky(m: usize, n: usize) -> Vec<Vec<f64>> {
    (0..m)
        .map(|t| {
            (0..n)
                .map(|i| {
                    let base = (i % 10) as f64 * 2.5 + t as f64 * 1e-4;
                    if i % 97 == 0 {
                        base + 1e9 * (t as f64 + 1.0)
                    } else {
                        base + ((t * i) % 13) as f64 * 0.05
                    }
                })
                .collect()
        })
        .collect()
}

fn ba_block(method: Method, chunk: usize, entropy: EntropyStage) -> Vec<u8> {
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4))
        .with_method(method)
        .with_entropy(entropy)
        .with_quantizer(QuantizerKind::BitAdaptive { chunk });
    Compressor::new(cfg).compress_buffer(&spiky(6, 200)).unwrap()
}

#[test]
fn fuzz_bit_adaptive_block_decode() {
    // Version-2 blocks whose payload carries the per-region width table:
    // chunk = 1 maximizes width bytes, chunk = 4 mixes widths inside a
    // snapshot, the default chunk exercises the common layout, and the
    // range-coded seed covers the other entropy stage around it.
    let seeds = vec![
        ba_block(Method::Vq, 1, EntropyStage::Huffman),
        ba_block(Method::Vqt, 4, EntropyStage::Huffman),
        ba_block(Method::Mt, 64, EntropyStage::Huffman),
        ba_block(Method::Vq, 64, EntropyStage::Range),
    ];
    let limits = tight_limits();
    for s in &seeds {
        assert!(Decompressor::inspect(s).unwrap().bit_adaptive);
        assert!(Decompressor::with_limits(limits).decompress_block(s).is_ok());
    }
    // A v1 block with the bit-adaptive flag forged on rides along as a
    // mutation source; the version/flag cross-check rejects it outright.
    let mut forged = block(Method::Vq, EntropyStage::Huffman);
    forged[FLAGS_OFFSET] |= FLAG_BIT_ADAPTIVE;
    assert!(Decompressor::with_limits(limits).decompress_block(&forged).is_err());
    let mut seeds = seeds;
    seeds.push(forged);
    let accepts = [true, true, true, true, false];
    campaign("block-bit-adaptive", 0x4d445a0c, &seeds.clone(), 128 * MB, |_, base_idx, input| {
        let got = Decompressor::with_limits(limits).decompress_block(input);
        if input == seeds[base_idx] {
            assert_eq!(got.is_ok(), accepts[base_idx], "identity seed acceptance changed");
        }
    });
}

#[test]
fn fuzz_block_decode_f32_differential() {
    let seeds = vec![f32_block(), block(Method::Vq, EntropyStage::Huffman)];
    let limits = tight_limits();
    campaign("block-f32", 0x4d445a06, &seeds.clone(), 128 * MB, |_, _, input| {
        // The narrow path must agree with the wide path on acceptance:
        // whenever f32 decode succeeds, f64 decode of the same bytes must
        // succeed too (the f32 path is the f64 path plus a flag gate).
        let narrow = Decompressor::with_limits(limits).decompress_block_f32(input);
        let wide = Decompressor::with_limits(limits).decompress_block(input);
        if narrow.is_ok() {
            assert!(wide.is_ok(), "f32 decode accepted a block the f64 path rejects");
        }
    });
}

#[test]
fn fuzz_snapshot_random_access() {
    let seeds =
        vec![block(Method::Vq, EntropyStage::Huffman), block(Method::Vq, EntropyStage::Range)];
    let limits = tight_limits();
    campaign("snapshot", 0x4d445a07, &seeds.clone(), 128 * MB, |mutator, base_idx, input| {
        let index = mutator.rng().index(8);
        let got = Decompressor::decompress_snapshot_limited(input, index, &limits);
        if input == seeds[base_idx] && index < 6 {
            assert!(got.is_ok(), "identity input must random-access");
        }
    });
}

fn frames(n: usize, t: usize) -> Vec<Frame> {
    (0..t)
        .map(|s| {
            let axis =
                |p: usize| (0..n).map(|i| ((i * p) % 9) as f64 * 1.5 + s as f64 * 1e-4).collect();
            Frame::new(axis(1), axis(2), axis(3))
        })
        .collect()
}

#[test]
fn fuzz_trajectory_container() {
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Vqt);
    let mut tc = TrajectoryCompressor::new(cfg.clone());
    let seeds: Vec<Vec<u8>> =
        (0..3).map(|_| tc.compress_buffer(&frames(120, 4)).unwrap()).collect();
    let limits = tight_limits();
    campaign("traj", 0x4d445a08, &seeds, 256 * MB, |_, _, input| {
        let axes: [Box<dyn Codec>; 3] = std::array::from_fn(|_| {
            Box::new(MdzCodec::from_config(cfg.clone()).with_decode_limits(limits))
                as Box<dyn Codec>
        });
        let _ = TrajectoryDecompressor::from_codecs(axes).decompress_buffer(input);
    });
}

#[test]
fn fuzz_frame_layer_and_reader() {
    // Framed container streams; the CRC gives a real oracle: any payload a
    // reader yields from a mutated stream must byte-equal one of the seed
    // payloads (a 2^-32 checksum collision is the only escape, and the
    // deterministic seeds mean a passing run stays passing).
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-4)).with_method(Method::Vq);
    let mut tc = TrajectoryCompressor::new(cfg);
    let payloads: Vec<Vec<u8>> =
        (0..4).map(|_| tc.compress_buffer(&frames(80, 3)).unwrap()).collect();
    let mut stream = Vec::new();
    for p in &payloads {
        write_frame(p, &mut stream).unwrap();
    }
    let seeds = vec![stream];
    campaign("frames", 0x4d445a09, &seeds, 16 * MB, |_, _, input| {
        let mut reader = TrajReader::new(input);
        let mut yielded = 0usize;
        for payload in &mut reader {
            assert!(
                payloads.iter().any(|p| p.as_slice() == payload),
                "reader yielded a payload that matches no seed (checksum hole)"
            );
            yielded += 1;
        }
        assert!(yielded <= payloads.len() * 8, "reader yielded implausibly many frames");
        // Direct read_frame at offset 0 must agree with the reader's oracle.
        if let Ok(first) = read_frame(input, &mut 0) {
            assert!(payloads.iter().any(|p| p.as_slice() == first));
        }
    });
}

#[test]
fn fuzz_concurrent_block_decode_differential() {
    // Batched decode must be indistinguishable from the serial loop on
    // hostile input: identical values when every block decodes, identical
    // first error otherwise. Worker fan-out must never change acceptance.
    let seeds = vec![
        block(Method::Vq, EntropyStage::Huffman),
        block(Method::Mt, EntropyStage::Huffman),
        block(Method::Vqt, EntropyStage::Range),
        f32_block(),
    ];
    let limits = tight_limits();
    let opts = ParallelOptions::with_workers(4);
    campaign("concurrent-decode", 0x4d445a0a, &seeds.clone(), 256 * MB, |_, base_idx, input| {
        // The mutated block rides between two intact seeds so an error can
        // land at any slot and reference state carries across slots.
        let batch: [&[u8]; 3] = [&seeds[base_idx], input, &seeds[(base_idx + 1) % seeds.len()]];
        let serial: Vec<_> = {
            let mut dec = Decompressor::with_limits(limits);
            batch.iter().map(|b| dec.decompress_block(b)).collect()
        };
        let parallel = Decompressor::with_limits(limits).decompress_blocks_parallel(&batch, &opts);
        match serial.iter().find_map(|r| r.as_ref().err()) {
            None => {
                let expected: Vec<_> = serial.into_iter().map(Result::unwrap).collect();
                assert_eq!(
                    parallel.as_ref().ok(),
                    Some(&expected),
                    "parallel decode diverged from a clean serial loop"
                );
            }
            Some(first_err) => assert_eq!(
                parallel.as_ref().err(),
                Some(first_err),
                "parallel decode surfaced a different first error"
            ),
        }
    });
}

#[test]
fn fuzz_store_archive() {
    // Indexed store archives: mutations land in the footer index, the
    // epoch/keyframe headers, and the block records. Opening parses the
    // header + footer; reading walks `record_at` (FNV oracle) and the epoch
    // decoder. The triad plus an identity check: unmutated seeds must open
    // and read back their full frame range.
    let store_frames = frames(60, 10);
    let seeds: Vec<Vec<u8>> = [
        (Method::Mt, Precision::F64, 2usize),
        (Method::Vq, Precision::F64, 1),
        (Method::Vqt, Precision::F32, 4),
    ]
    .iter()
    .map(|&(method, precision, k)| {
        let mut opts =
            StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(method));
        opts.buffer_size = 3;
        opts.epoch_interval = k;
        opts.precision = precision;
        write_store(&store_frames, &["Cu".into()], &[], &opts).unwrap()
    })
    .collect();
    let limits = tight_limits();
    campaign("store", 0x4d445a0b, &seeds.clone(), 256 * MB, |_, base_idx, input| {
        let opts = ReaderOptions { cache_epochs: 2, limits };
        let got = StoreReader::with_options(input.to_vec(), opts).and_then(|r| {
            let n = r.index().n_frames;
            r.read_frames(0..n)
        });
        if input == seeds[base_idx] {
            assert_eq!(
                got.expect("identity archive must read").len(),
                store_frames.len(),
                "identity archive returned the wrong frame count"
            );
        }
    });
}

#[test]
fn fuzz_store_recover() {
    // The crash-recovery scan: mutations land in appended archives — two
    // footer generations (the dead pre-append footer is still embedded
    // mid-file), torn tails, and truncated frames. `StoreReader::recover`
    // must locate *a* valid footer or return a typed error, never panic,
    // never over-allocate; and whatever it recovers must decode in full.
    let base_frames = frames(60, 8);
    let extra_frames = frames(60, 4);
    let appended = |method: Method, k: usize| -> Vec<u8> {
        let mut opts =
            StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(method));
        opts.buffer_size = 2;
        opts.epoch_interval = k;
        let blob = write_store(&base_frames, &["Cu".into()], &[], &opts).unwrap();
        let mut io = MemIo::new(blob);
        append_store(&mut io, &extra_frames, &opts).unwrap();
        io.into_bytes()
    };
    let mut torn = appended(Method::Vq, 1);
    torn.truncate(torn.len() - 9); // cut inside the appended footer trailer
    let seeds = vec![appended(Method::Mt, 2), appended(Method::Vq, 1), torn];
    let limits = tight_limits();
    campaign("store-recover", 0x4d445a0d, &seeds.clone(), 256 * MB, |_, base_idx, input| {
        let opts = ReaderOptions { cache_epochs: 2, limits };
        let registry = std::sync::Arc::new(mdz_store::Registry::new());
        let got = StoreReader::recover_with_registry(input.to_vec(), opts, registry).and_then(
            |(r, rep)| {
                let n = r.index().n_frames;
                r.read_frames(0..n).map(|f| (f.len(), rep.truncated_bytes))
            },
        );
        if input == seeds[base_idx] {
            let (n, truncated) = got.expect("identity archive must recover");
            // Seeds 0/1 are clean appends; seed 2 recovers to the
            // pre-append footer by truncating the torn tail.
            if base_idx < 2 {
                assert_eq!((n, truncated), (12, 0), "clean append must recover untouched");
            } else {
                assert_eq!(n, 8, "torn append must fall back to the pre-append state");
                assert!(truncated > 0, "torn tail must be reported");
            }
        }
    });
}

#[test]
fn fuzz_net_frame_decoder() {
    // The event engine's incremental request framing: pipelined streams of
    // length-prefixed requests arriving in arbitrary chunk sizes. The triad
    // plus two decoder-specific obligations: framing errors are sticky (the
    // stream cannot resynchronize past a bad prefix), and an unmutated
    // pipeline must reassemble to exactly its request bodies no matter how
    // the bytes are chunked.
    let scripts: Vec<Vec<Request>> = vec![
        vec![Request::Info, Request::Get { start: 0, end: 8 }, Request::Stats],
        (0..32).map(|i| Request::Get { start: i * 4, end: i * 4 + 4 }).collect(),
        vec![
            Request::Append { precision: Precision::F32, frames: frames(16, 2) },
            Request::Metrics,
        ],
        vec![Request::Stats],
    ];
    let refs: Vec<Vec<Vec<u8>>> =
        scripts.iter().map(|s| s.iter().map(Request::encode).collect()).collect();
    let seeds: Vec<Vec<u8>> = refs
        .iter()
        .map(|bodies| {
            bodies
                .iter()
                .flat_map(|b| {
                    let mut framed = (b.len() as u32).to_le_bytes().to_vec();
                    framed.extend_from_slice(b);
                    framed
                })
                .collect()
        })
        .collect();
    const MAX_BODY: usize = 1 << 16;
    campaign("net-frames", 0x4d445a0e, &seeds.clone(), 8 * MB, |mutator, base_idx, input| {
        let mut dec = FrameDecoder::new(MAX_BODY);
        let mut bodies: Vec<Vec<u8>> = Vec::new();
        let mut framing_err = None;
        let mut pos = 0;
        while pos < input.len() && framing_err.is_none() {
            // Worst-case trickle, small TCP segments, or coalesced bursts.
            let chunk = match mutator.rng().index(3) {
                0 => 1,
                1 => 1 + mutator.rng().index(7),
                _ => 1 + mutator.rng().index(4096),
            }
            .min(input.len() - pos);
            dec.push(&input[pos..pos + chunk]);
            pos += chunk;
            loop {
                match dec.next_frame() {
                    Ok(Some(body)) => {
                        assert!(body.len() <= MAX_BODY, "decoder yielded an oversized body");
                        let _ = Request::parse(&body); // must never panic
                        bodies.push(body);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        framing_err = Some(e);
                        break;
                    }
                }
            }
        }
        if let Some(e) = framing_err {
            dec.push(&[0u8; 8]);
            assert_eq!(dec.next_frame(), Err(e), "framing error was not sticky");
        } else if input == seeds[base_idx] {
            assert_eq!(bodies, refs[base_idx], "identity pipeline must reassemble exactly");
            assert!(!dec.has_partial(), "identity pipeline left a partial tail");
        }
    });
}

/// The acceptance-bar sanity check: the configured iteration count is
/// what the campaigns above actually ran.
#[test]
fn iteration_budget_is_positive() {
    assert!(default_iters() > 0);
}
