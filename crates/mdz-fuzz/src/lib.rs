//! Deterministic, dependency-free fuzzing support for the MDZ decode
//! surfaces.
//!
//! External fuzzers (cargo-fuzz, AFL) need nightly toolchains, registry
//! dependencies, and coverage instrumentation — none of which this offline
//! workspace allows. This crate instead ships the three pieces a useful
//! in-repo fuzz harness actually needs:
//!
//! * [`Mutator`] — a seeded, structure-aware byte mutator built on
//!   `mdz_sim`'s xoshiro256++ [`Rng`]. The same seed always replays the
//!   same mutation sequence, so every campaign failure is reproducible
//!   from its (seed, iteration) pair alone.
//! * [`CountingAlloc`] — a global-allocator wrapper that tracks live and
//!   peak heap bytes, letting campaigns assert "decoding hostile input
//!   never allocates more than its budget", not just "never panics".
//! * [`default_iters`] — the per-campaign iteration budget, tunable via
//!   the `MDZ_FUZZ_ITERS` environment variable so CI can run deep
//!   campaigns while a local `cargo test` stays fast.
//!
//! The campaigns themselves live in this crate's integration tests
//! (`tests/fuzz_campaigns.rs`); seeded regression inputs from past runs
//! live in the repository's `corpus/` directory and are replayed by
//! `tests/corpus_regressions.rs`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

pub use mdz_sim::rng::Rng;

/// Iterations each fuzz campaign runs.
///
/// `MDZ_FUZZ_ITERS` overrides; otherwise 100 000 in release builds (the
/// acceptance bar) and 2 000 under debug so plain `cargo test` stays quick.
pub fn default_iters() -> usize {
    match std::env::var("MDZ_FUZZ_ITERS") {
        Ok(v) => v.parse().expect("MDZ_FUZZ_ITERS must be a non-negative integer"),
        Err(_) => {
            if cfg!(debug_assertions) {
                2_000
            } else {
                100_000
            }
        }
    }
}

/// Seeded structure-aware mutator over byte buffers.
///
/// Each [`Mutator::mutate`] call stacks 1–3 primitive corruptions picked at
/// random: truncation, bit flips, byte runs XORed or overwritten, forged
/// LEB128 length fields, splices with donor buffers, insertions, and
/// deletions. The primitives are also public so campaigns can drive a
/// specific corruption shape (e.g. only truncations).
pub struct Mutator {
    rng: Rng,
}

impl Mutator {
    /// Creates a mutator whose entire output stream is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { rng: Rng::seed_from_u64(seed) }
    }

    /// The underlying RNG, for campaigns that need auxiliary choices
    /// (picking a seed buffer, a snapshot index, …) on the same stream.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Applies 1–3 random primitive corruptions to `base`. `donors` feeds
    /// the splice primitive; pass the campaign's seed set (it may include
    /// `base` itself).
    pub fn mutate(&mut self, base: &[u8], donors: &[Vec<u8>]) -> Vec<u8> {
        let mut out = base.to_vec();
        let rounds = 1 + self.rng.index(3);
        for _ in 0..rounds {
            out = match self.rng.index(8) {
                0 => self.truncate(&out),
                1 => self.bit_flips(&out),
                2 => self.xor_run(&out),
                3 => self.overwrite_run(&out),
                4 => self.forge_varint(&out),
                5 if !donors.is_empty() => {
                    let donor = &donors[self.rng.index(donors.len())];
                    self.splice(&out, donor)
                }
                5 => self.splice(&out, &[]),
                6 => self.insert(&out),
                _ => self.delete(&out),
            };
        }
        out
    }

    /// Cuts the buffer at a random point (possibly to empty).
    pub fn truncate(&mut self, data: &[u8]) -> Vec<u8> {
        data[..self.rng.index(data.len() + 1)].to_vec()
    }

    /// Flips 1–8 random bits.
    pub fn bit_flips(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        if out.is_empty() {
            return out;
        }
        for _ in 0..1 + self.rng.index(8) {
            let i = self.rng.index(out.len());
            out[i] ^= 1 << self.rng.index(8);
        }
        out
    }

    /// XORs a run of 1–16 bytes with one random nonzero byte.
    pub fn xor_run(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        if out.is_empty() {
            return out;
        }
        let start = self.rng.index(out.len());
        let len = (1 + self.rng.index(16)).min(out.len() - start);
        let mask = (1 + self.rng.index(255)) as u8;
        for b in &mut out[start..start + len] {
            *b ^= mask;
        }
        out
    }

    /// Overwrites a run of 1–16 bytes with 0x00, 0xFF, or random bytes.
    pub fn overwrite_run(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        if out.is_empty() {
            return out;
        }
        let start = self.rng.index(out.len());
        let len = (1 + self.rng.index(16)).min(out.len() - start);
        match self.rng.index(3) {
            0 => out[start..start + len].fill(0x00),
            1 => out[start..start + len].fill(0xFF),
            _ => {
                for b in &mut out[start..start + len] {
                    *b = (self.rng.next_u64() & 0xFF) as u8;
                }
            }
        }
        out
    }

    /// Overwrites a random position with a forged LEB128 varint encoding a
    /// huge value — the classic length-field tamper that turns a count into
    /// an allocation request.
    pub fn forge_varint(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        if out.is_empty() {
            return out;
        }
        let value = match self.rng.index(4) {
            0 => u64::MAX,
            1 => 1 << 34, // the historic decoder cap
            2 => 1 << (32 + self.rng.index(31) as u64),
            _ => self.rng.next_u64() | (1 << 40),
        };
        let mut forged = Vec::new();
        let mut v = value;
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                forged.push(byte);
                break;
            }
            forged.push(byte | 0x80);
        }
        let start = self.rng.index(out.len());
        for (i, b) in forged.into_iter().enumerate() {
            if start + i < out.len() {
                out[start + i] = b;
            } else {
                out.push(b);
            }
        }
        out
    }

    /// Joins a random prefix of `a` with a random suffix of `b`.
    pub fn splice(&mut self, a: &[u8], b: &[u8]) -> Vec<u8> {
        let cut_a = self.rng.index(a.len() + 1);
        let cut_b = self.rng.index(b.len() + 1);
        let mut out = a[..cut_a].to_vec();
        out.extend_from_slice(&b[cut_b..]);
        out
    }

    /// Inserts 1–8 random bytes at a random position.
    pub fn insert(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        let at = self.rng.index(out.len() + 1);
        let extra: Vec<u8> =
            (0..1 + self.rng.index(8)).map(|_| (self.rng.next_u64() & 0xFF) as u8).collect();
        out.splice(at..at, extra);
        out
    }

    /// Deletes a run of 1–8 bytes.
    pub fn delete(&mut self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        if out.is_empty() {
            return out;
        }
        let start = self.rng.index(out.len());
        let len = (1 + self.rng.index(8)).min(out.len() - start);
        out.drain(start..start + len);
        out
    }
}

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed global allocator that tracks live and peak heap
/// bytes, so campaigns can assert allocation stays within a budget while
/// decoding hostile input.
///
/// Install in a test binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: mdz_fuzz::CountingAlloc = mdz_fuzz::CountingAlloc;
/// ```
///
/// The counters are process-global; serialize campaigns (e.g. behind a
/// mutex) if the binary runs tests on multiple threads.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Currently live heap bytes.
    pub fn live() -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// Peak live heap bytes since the last [`CountingAlloc::reset_peak`].
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Resets the peak watermark to the current live count.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

// SAFETY: defers all allocation to `System`; the counters are advisory
// bookkeeping and never affect pointer validity.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                let grow = new_size - layout.size();
                let live = LIVE.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutator_is_deterministic() {
        let base = b"The quick brown fox jumps over the lazy dog".to_vec();
        let donors = vec![base.clone(), vec![0u8; 64]];
        let run = |seed: u64| -> Vec<Vec<u8>> {
            let mut m = Mutator::new(seed);
            (0..50).map(|_| m.mutate(&base, &donors)).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn mutate_handles_empty_base() {
        let mut m = Mutator::new(1);
        let donors = vec![vec![1, 2, 3]];
        for _ in 0..200 {
            let _ = m.mutate(&[], &donors);
            let _ = m.mutate(&[], &[]);
        }
    }

    #[test]
    fn forged_varint_round_trips_as_huge_value() {
        let mut m = Mutator::new(3);
        let base = vec![0u8; 32];
        for _ in 0..100 {
            let out = m.forge_varint(&base);
            assert!(out.len() >= base.len());
        }
    }

    #[test]
    fn primitive_ops_never_panic_on_degenerate_inputs() {
        let mut m = Mutator::new(9);
        for data in [vec![], vec![0u8], vec![0xFF; 2]] {
            let _ = m.truncate(&data);
            let _ = m.bit_flips(&data);
            let _ = m.xor_run(&data);
            let _ = m.overwrite_run(&data);
            let _ = m.forge_varint(&data);
            let _ = m.splice(&data, &data);
            let _ = m.insert(&data);
            let _ = m.delete(&data);
        }
    }

    #[test]
    fn default_iters_obeys_env_override() {
        // Avoid mutating the process environment (other tests run in
        // parallel); just check the compiled-in defaults are sane.
        let n = default_iters();
        assert!(n == 2_000 || n == 100_000 || std::env::var("MDZ_FUZZ_ITERS").is_ok());
    }
}
