//! Tiny text-table and CSV writers for experiment output.

use std::fmt::Write as _;
use std::path::Path;

/// An in-memory table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a titled table with column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (w, c) in widths.iter().zip(cells.iter()) {
                let _ = write!(out, "{c:>w$}  ");
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.header);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut s = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(s, "{}", self.header.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        std::fs::write(path, s)
    }
}

/// Formats a float with sensible experiment precision.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a == 0.0 {
        "0".into()
    } else if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-name"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["has,comma".into(), "has\"quote".into()]);
        let dir = std::env::temp_dir().join("mdz_table_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"has,comma\""));
        assert!(s.contains("\"has\"\"quote\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.42), "42.4");
        assert_eq!(fmt(1.2345), "1.234");
        assert_eq!(fmt(0.00012), "1.200e-4");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
