//! Minimal JSON value type with an emitter and a strict parser.
//!
//! The workspace is offline-green (no serde), so benchmark artifacts like
//! `BENCH_throughput.json` are produced and validated with this module: a
//! small value enum, a deterministic renderer (object keys keep insertion
//! order), and a recursive-descent parser used by the schema-validation
//! tests and `scripts/verify.sh`'s throughput smoke.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (rendered via shortest-roundtrip `f64` formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        // JSON has no NaN/Infinity; encode as null like most emitters.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for our artifacts.
                        out.push(char::from_u32(code).ok_or("invalid \\u escape".to_string())?);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from &str, so this
                // is always valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0xC0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid utf-8"));
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(format!("expected value at offset {start}"));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at offset {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj(vec![
            ("experiment", Json::Str("throughput".into())),
            ("reps", Json::Num(3.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "entries",
                Json::Arr(vec![Json::obj(vec![
                    ("workers", Json::Num(4.0)),
                    ("mbps", Json::Num(123.456)),
                ])]),
            ),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("experiment").unwrap().as_str(), Some("throughput"));
        let entries = parsed.get("entries").unwrap().as_array().unwrap();
        assert_eq!(entries[0].get("workers").unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert!(Json::Num(8.0).render().starts_with('8'));
        assert!(!Json::Num(8.0).render().contains('.'));
    }

    #[test]
    fn escapes_round_trip() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":1} x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_standard_json() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }
}
