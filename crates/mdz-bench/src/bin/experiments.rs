//! CLI regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [--scale test|small|full] [--out DIR] [--seed N]
//!             [--workers LIST] [--reps N] <id>... | all | list
//! ```
//!
//! `--workers` takes a comma-separated list of worker counts (default
//! `1,2,4,8`) and `--reps` the timed repetitions per measurement (default
//! 3); both apply to the `throughput` experiment.
//!
//! Each experiment prints an aligned text table and writes CSV under the
//! output directory (default `results/`).

use mdz_bench::experiments::{self, Ctx, ALL};
use mdz_sim::Scale;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut scale = Scale::Small;
    let mut out_dir = PathBuf::from("results");
    let mut seed = 20220707u64;
    let mut workers = vec![1usize, 2, 4, 8];
    let mut reps = 3usize;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = match v.as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => {
                        eprintln!("unknown scale '{v}' (expected test|small|full)");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => out_dir = PathBuf::from(args.next().unwrap_or_default()),
            "--workers" => {
                let v = args.next().unwrap_or_default();
                let parsed: Option<Vec<usize>> =
                    v.split(',').map(|s| s.trim().parse().ok().filter(|&w| w > 0)).collect();
                workers = match parsed.filter(|w| !w.is_empty()) {
                    Some(w) => w,
                    None => {
                        eprintln!("--workers requires a comma-separated list of positive integers");
                        std::process::exit(2);
                    }
                };
            }
            "--reps" => {
                reps = args.next().and_then(|s| s.parse().ok()).filter(|&r| r > 0).unwrap_or_else(
                    || {
                        eprintln!("--reps requires a positive integer");
                        std::process::exit(2);
                    },
                )
            }
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires an integer");
                    std::process::exit(2);
                })
            }
            "list" => {
                for id in ALL {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--scale test|small|full] [--out DIR] [--seed N] \
                     [--workers LIST] [--reps N] <id>... | all | list"
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("no experiments requested; try 'all' or 'list'");
        std::process::exit(2);
    }

    let mut ctx = Ctx::new(scale, out_dir, seed).with_workers(workers).with_reps(reps);
    for id in &ids {
        let t0 = Instant::now();
        match experiments::run(id, &mut ctx) {
            Some(tables) => {
                for table in tables {
                    println!("{}", table.render());
                }
                eprintln!("[{id}] done in {:.1}s", t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment '{id}'; 'list' shows the ids");
                std::process::exit(2);
            }
        }
    }
}
