//! Live-ingest benchmark: a simulated producer streams frames into a
//! running `mdzd` through APPEND while follower clients tail the growing
//! archive.
//!
//! Not a paper artifact: the paper's pipeline compresses offline. This
//! experiment measures what the live-archive path costs and delivers —
//! append throughput (server-side compression + two syncs per chunk on the
//! acknowledgment path) and read-behind-write staleness (how long after a
//! chunk is durably acknowledged each follower first observes its frames).
//! Every follower's stream is also checked bit-exact against an offline
//! decode of the final archive, which is the whole point of followers only
//! ever seeing footer-covered frames. The machine-readable
//! `BENCH_ingest.json` is schema-checked by `tests/ingest_json.rs` and
//! `scripts/verify.sh`.

use super::Ctx;
use crate::harness::TimingSummary;
use crate::json::Json;
use crate::table::{fmt, Table};
use mdz_core::{ErrorBound, Frame, MdzConfig};
use mdz_sim::{DatasetKind, Scale};
use mdz_store::{
    write_store, AppendSink, Client, MemIo, Precision, Server, ServerConfig, StoreIo, StoreOptions,
    StoreReader,
};
use std::time::{Duration, Instant};

/// Ingest-vs-tail run over a live server; writes `BENCH_ingest.json`
/// alongside the usual CSV.
pub fn ingest(ctx: &mut Ctx) -> Vec<Table> {
    let kind = DatasetKind::CopperB;
    let dataset = ctx.dataset(kind);
    let frames: Vec<Frame> = dataset
        .snapshots
        .iter()
        .map(|s| Frame::new(s.x.clone(), s.y.clone(), s.z.clone()))
        .collect();
    let n_frames = frames.len();
    let n_atoms = dataset.atoms();
    let (bs, n_appends, followers) =
        if matches!(ctx.scale, Scale::Test) { (2, 3, 2) } else { (10, 8, 4) };

    // Chunk boundaries: every append except the last lands on a block
    // boundary (the footer-flip protocol requires full blocks before the
    // next append).
    let chunk = ((n_frames / (n_appends + 1)) / bs * bs).max(bs).min(n_frames);
    let mut bounds = vec![0, chunk];
    while *bounds.last().unwrap() < n_frames {
        let next = (bounds.last().unwrap() + chunk).min(n_frames);
        bounds.push(next);
        if bounds.len() > n_appends + 1 {
            *bounds.last_mut().unwrap() = n_frames;
            break;
        }
    }
    bounds.dedup();

    let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::ValueRangeRelative(1e-3)));
    opts.buffer_size = bs;
    opts.epoch_interval = 4;
    let initial = write_store(&frames[..bounds[1]], &[], &[], &opts).expect("write store");

    let reader = StoreReader::open(initial.clone()).expect("open store");
    let server = Server::bind(reader, "127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .with_append_sink(AppendSink::new(Box::new(MemIo::new(initial)), opts.clone()));
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle().expect("handle");
    let serving = std::thread::spawn(move || server.run());

    // Followers tail from frame 0 in their own threads, recording when each
    // position first became visible to them.
    let follower_threads: Vec<_> = (0..followers)
        .map(|_| {
            std::thread::spawn(move || {
                let mut follower = Client::connect(addr)
                    .expect("follower connect")
                    .follow(0)
                    .expect("follow")
                    .with_poll_interval(Duration::from_millis(2));
                let mut seen: Vec<Frame> = Vec::new();
                let mut observations: Vec<(usize, Instant)> = Vec::new();
                while seen.len() < n_frames {
                    let batch = follower.next_batch().expect("next_batch");
                    seen.extend(batch);
                    observations.push((follower.position(), Instant::now()));
                }
                (seen, observations)
            })
        })
        .collect();

    // The producer: one APPEND per chunk, each acknowledged only once
    // durable. Ack instants are the staleness reference points.
    let mut producer = Client::connect(addr).expect("producer connect");
    let mut append_samples = Vec::new();
    let mut ack_points: Vec<(usize, Instant)> = Vec::new();
    let ingest_t0 = Instant::now();
    for w in bounds.windows(2).skip(1) {
        let t0 = Instant::now();
        let ack = producer.append(&frames[w[0]..w[1]], Precision::F64).expect("append");
        append_samples.push(t0.elapsed().as_secs_f64());
        assert_eq!(ack.n_frames as usize, w[1], "ack frame count");
        ack_points.push((w[1], Instant::now()));
    }
    let ingest_wall = ingest_t0.elapsed().as_secs_f64();
    let appended_frames = n_frames - bounds[1];

    // Offline reference: replay the same appends into a local image
    // (compression is deterministic, so this archive is byte-identical to
    // the server's) and decode it sequentially.
    let mut offline_io = MemIo::new(write_store(&frames[..bounds[1]], &[], &[], &opts).unwrap());
    for w in bounds.windows(2).skip(1) {
        mdz_store::append_store(&mut offline_io, &frames[w[0]..w[1]], &opts).expect("offline");
    }
    let offline = StoreReader::open(offline_io.read_all().expect("offline image"))
        .expect("offline open")
        .read_frames(0..n_frames)
        .expect("offline decode");

    let mut staleness_samples = Vec::new();
    let mut bitexact = true;
    for t in follower_threads {
        let (seen, observations) = t.join().expect("follower thread");
        bitexact &= frames_equal(&seen, &offline);
        for &(end, t_ack) in &ack_points {
            if let Some(&(_, t_obs)) = observations.iter().find(|(pos, _)| *pos >= end) {
                staleness_samples.push((t_obs - t_ack.min(t_obs)).as_secs_f64());
            }
        }
    }
    handle.shutdown();
    serving.join().expect("server thread").expect("server run");
    assert!(bitexact, "a follower's stream diverged from the offline decode");

    let append = TimingSummary::from_samples(&append_samples);
    let staleness = TimingSummary::from_samples(&staleness_samples);
    let frames_per_second = appended_frames as f64 / ingest_wall.max(1e-12);
    let raw_mb_per_second = frames_per_second * (n_atoms * 24) as f64 / 1e6;

    write_json(
        ctx,
        kind,
        n_frames,
        n_atoms,
        bs,
        bounds.len() - 2,
        followers,
        appended_frames,
        frames_per_second,
        raw_mb_per_second,
        &append,
        &staleness,
        bitexact,
    );

    let mut table = Table::new(
        &format!(
            "Live ingest ({}, {} appends × ~{} frames, {} followers)",
            kind.name(),
            bounds.len() - 2,
            chunk,
            followers
        ),
        &[
            "appended frames",
            "append p50 s",
            "append p99 s",
            "frames/s",
            "raw MB/s",
            "staleness p50 s",
            "staleness p99 s",
            "bit-exact",
        ],
    );
    table.row(vec![
        appended_frames.to_string(),
        fmt(append.p50),
        fmt(append.p99),
        fmt(frames_per_second),
        fmt(raw_mb_per_second),
        fmt(staleness.p50),
        fmt(staleness.p99),
        bitexact.to_string(),
    ]);
    vec![ctx.emit("ingest", table)]
}

/// Bit-exact frame comparison (decoded values are deterministic, so
/// follower streams must match the offline decode exactly).
fn frames_equal(a: &[Frame], b: &[Frame]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(fa, fb)| {
            fa.x.iter().zip(&fb.x).all(|(p, q)| p.to_bits() == q.to_bits())
                && fa.y.iter().zip(&fb.y).all(|(p, q)| p.to_bits() == q.to_bits())
                && fa.z.iter().zip(&fb.z).all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    ctx: &Ctx,
    kind: DatasetKind,
    n_frames: usize,
    n_atoms: usize,
    bs: usize,
    n_appends: usize,
    followers: usize,
    appended_frames: usize,
    frames_per_second: f64,
    raw_mb_per_second: f64,
    append: &TimingSummary,
    staleness: &TimingSummary,
    bitexact: bool,
) {
    let timing = |t: &TimingSummary| {
        Json::obj(vec![
            ("min_seconds", Json::Num(t.min)),
            ("median_seconds", Json::Num(t.median)),
            ("mean_seconds", Json::Num(t.mean)),
            ("p50_seconds", Json::Num(t.p50)),
            ("p99_seconds", Json::Num(t.p99)),
            ("samples", Json::Num(t.reps as f64)),
        ])
    };
    let doc = Json::obj(vec![
        ("experiment", Json::Str("ingest".into())),
        ("scale", Json::Str(format!("{:?}", ctx.scale).to_lowercase())),
        ("dataset", Json::Str(kind.name().into())),
        ("n_frames", Json::Num(n_frames as f64)),
        ("n_atoms", Json::Num(n_atoms as f64)),
        ("buffer_frames", Json::Num(bs as f64)),
        ("appends", Json::Num(n_appends as f64)),
        ("followers", Json::Num(followers as f64)),
        ("appended_frames", Json::Num(appended_frames as f64)),
        ("append_frames_per_second", Json::Num(frames_per_second)),
        ("append_raw_mb_per_second", Json::Num(raw_mb_per_second)),
        ("append_timing", timing(append)),
        ("staleness_timing", timing(staleness)),
        ("followers_bitexact", Json::Bool(bitexact)),
    ]);
    let path = ctx.out_dir.join("BENCH_ingest.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, doc.render()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
