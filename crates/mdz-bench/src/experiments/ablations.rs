//! Ablation studies beyond the paper's figures: each table isolates one
//! design decision DESIGN.md calls out.

use super::Ctx;
use crate::harness::{axis_eps, mdz_codec, run_dataset};
use crate::table::{fmt, Table};
use mdz_core::quant::Quantized;
use mdz_core::{Codec, Compressor, EntropyStage, ErrorBound, LinearQuantizer, MdzConfig, Method};
use mdz_entropy::{huffman_encode, range_encode};
use mdz_lossless::lz77;
use mdz_sim::DatasetKind;
use std::time::Instant;

/// Runs every ablation.
pub fn ablations(ctx: &mut Ctx) -> Vec<Table> {
    vec![
        adapt_interval(ctx),
        entropy_stage(ctx),
        pipeline_stages(ctx),
        second_order(ctx),
        grid_reuse(ctx),
        velocity_prediction(ctx),
        velocity_compressibility(ctx),
    ]
}

/// Why trajectory compressors target positions (§III): velocities thermalize
/// every few steps, so under the same relative bound they compress far worse
/// than positions.
fn velocity_compressibility(ctx: &mut Ctx) -> Table {
    use mdz_sim::{LjSimulation, SimConfig};
    let mut t = Table::new(
        "Ablation — position vs velocity compressibility (LJ, eps 1e-3, BS 10)",
        &["stream", "value range", "CR"],
    );
    let n = if ctx.scale == mdz_sim::Scale::Test { 200 } else { 2000 };
    let mut sim =
        LjSimulation::new(SimConfig { n_target: n, seed: ctx.seed, ..Default::default() });
    sim.run(200);
    let mut pos: Vec<Vec<f64>> = Vec::new();
    let mut vel: Vec<Vec<f64>> = Vec::new();
    for _ in 0..30 {
        pos.push(sim.positions().iter().map(|p| p.x).collect());
        vel.push(sim.velocities().iter().map(|v| v.x).collect());
        sim.run(5);
    }
    for (name, series) in [("positions (x)", &pos), ("velocities (vx)", &vel)] {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in series.iter() {
            for &v in s {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        let eps = 1e-3 * (hi - lo);
        let cfg = MdzConfig::new(ErrorBound::Absolute(eps));
        let mut c = Compressor::new(cfg);
        let mut total = 0usize;
        for chunk in series.chunks(10) {
            total += c.compress_buffer(chunk).expect("compress").len();
        }
        // Use the actual particle count: the engine rounds n_target up to
        // whole FCC cells.
        let raw = series.len() * series[0].len() * 8;
        t.row(vec![name.into(), fmt(hi - lo), fmt(raw as f64 / total as f64)]);
    }
    ctx.emit("ablation_velocity_compressibility", t)
}

/// Tests the paper's §I claim 3: MD velocities predict future positions
/// only for a fraction of a vibrational period, so (unlike the cosmology
/// case of ASN's original setting) ballistic extrapolation does not help at
/// realistic dump intervals.
fn velocity_prediction(ctx: &mut Ctx) -> Table {
    use mdz_sim::{LjSimulation, SimConfig};
    let mut t = Table::new(
        "Ablation — ballistic (x + v·Δt) vs previous-position prediction (LJ liquid)",
        &["dump interval (steps)", "mean |err| prev-pos", "mean |err| ballistic", "ballistic wins"],
    );
    let n = if ctx.scale == mdz_sim::Scale::Test { 200 } else { 1000 };
    for interval in [1usize, 5, 20, 100, 400] {
        let mut sim =
            LjSimulation::new(SimConfig { n_target: n, seed: ctx.seed, ..Default::default() });
        sim.run(200); // melt
        let p0: Vec<_> = sim.positions().to_vec();
        let v0: Vec<_> = sim.velocities().to_vec();
        let dt = sim.dt();
        sim.run(interval);
        let p1 = sim.positions();
        let box_len = sim.box_len;
        let mut err_prev = 0.0;
        let mut err_ball = 0.0;
        for i in 0..p1.len() {
            let d_prev = (p1[i] - p0[i]).min_image(box_len);
            let ball = p0[i] + v0[i] * (interval as f64 * dt);
            let d_ball = (p1[i] - ball.wrap(box_len)).min_image(box_len);
            err_prev += d_prev.norm();
            err_ball += d_ball.norm();
        }
        err_prev /= p1.len() as f64;
        err_ball /= p1.len() as f64;
        t.row(vec![
            interval.to_string(),
            fmt(err_prev),
            fmt(err_ball),
            if err_ball < err_prev { "yes" } else { "no" }.into(),
        ]);
    }
    ctx.emit("ablation_velocity_prediction", t)
}

/// How often should ADP re-evaluate? (The paper fixes 50.)
fn adapt_interval(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Ablation — ADP re-evaluation interval (Copper-B, BS 10)",
        &["interval", "ratio", "comp MB/s"],
    );
    let d = ctx.dataset(DatasetKind::CopperB).clone();
    let eps = axis_eps(&d, 0, 1e-3);
    let series = d.axis_series(0);
    for interval in [1u32, 5, 10, 50, 200] {
        let mut cfg = MdzConfig::new(ErrorBound::Absolute(eps));
        cfg.adapt_interval = interval;
        let mut c = Compressor::new(cfg);
        let mut total = 0usize;
        let t0 = Instant::now();
        for chunk in series.chunks(10) {
            total += c.compress_buffer(chunk).expect("compress").len();
        }
        let secs = t0.elapsed().as_secs_f64();
        let raw = series.len() * d.atoms() * 8;
        t.row(vec![
            interval.to_string(),
            fmt(raw as f64 / total as f64),
            fmt(raw as f64 / 1e6 / secs),
        ]);
    }
    ctx.emit("ablation_adapt_interval", t)
}

/// Huffman vs range coding as the entropy stage.
fn entropy_stage(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Ablation — entropy stage (eps 1e-3, BS 10, method ADP)",
        &["dataset", "stage", "ratio", "comp MB/s"],
    );
    for kind in [DatasetKind::CopperB, DatasetKind::HeliumB, DatasetKind::Lj] {
        let d = ctx.dataset(kind).clone();
        for (name, stage) in [("Huffman", EntropyStage::Huffman), ("Range", EntropyStage::Range)] {
            let eps = axis_eps(&d, 0, 1e-3);
            let series = d.axis_series(0);
            let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_entropy(stage);
            let mut c = Compressor::new(cfg);
            let mut total = 0usize;
            let t0 = Instant::now();
            for chunk in series.chunks(10) {
                total += c.compress_buffer(chunk).expect("compress").len();
            }
            let secs = t0.elapsed().as_secs_f64();
            let raw = series.len() * d.atoms() * 8;
            t.row(vec![
                kind.name().into(),
                name.into(),
                fmt(raw as f64 / total as f64),
                fmt(raw as f64 / 1e6 / secs),
            ]);
        }
    }
    ctx.emit("ablation_entropy_stage", t)
}

/// Contribution of each pipeline stage on a real quantization-code stream.
fn pipeline_stages(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Ablation — pipeline stage contribution (Helium-B codes, Seq-2)",
        &["representation", "bytes", "ratio vs raw codes"],
    );
    // Build the actual VQT-style code stream: time prediction + quantization
    // over the x axis, Seq-2 interleaved.
    let d = ctx.dataset(DatasetKind::HeliumB).clone();
    let eps = axis_eps(&d, 0, 1e-3);
    let series = d.axis_series(0);
    let quant = LinearQuantizer::new(eps, 512);
    let m = series.len();
    let n = d.atoms();
    let mut codes = vec![0u32; m * n];
    let mut prev = vec![0.0f64; n];
    for (s_idx, snap) in series.iter().enumerate() {
        for (i, &v) in snap.iter().enumerate() {
            let pred = if s_idx == 0 {
                if i == 0 {
                    0.0
                } else {
                    prev[i - 1]
                }
            } else {
                prev[i]
            };
            let mut recon = v;
            let code = match quant.quantize(v, pred, &mut recon) {
                Quantized::Code(c) => c,
                Quantized::Escape => 0,
            };
            // Seq-2 layout: particle-major.
            codes[i * m + s_idx] = code;
            prev[i] = recon;
        }
    }
    let raw = codes.len() * 4;
    let mut raw_bytes = Vec::with_capacity(raw);
    for &c in &codes {
        raw_bytes.extend_from_slice(&c.to_le_bytes());
    }
    let huff = huffman_encode(&codes);
    let range = range_encode(&codes);
    let rows: Vec<(&str, usize)> = vec![
        ("raw u32 codes", raw),
        ("LZ only", lz77::compress(&raw_bytes, lz77::Level::Default).len()),
        ("Huffman only", huff.len()),
        ("Huffman + LZ", lz77::compress(&huff, lz77::Level::Default).len()),
        ("Range only", range.len()),
        ("Range + LZ", lz77::compress(&range, lz77::Level::Default).len()),
    ];
    for (name, bytes) in rows {
        t.row(vec![name.into(), bytes.to_string(), fmt(raw as f64 / bytes as f64)]);
    }
    ctx.emit("ablation_pipeline_stages", t)
}

/// Second-order (MT2) vs first-order (MT) time prediction; the extension
/// pays off on coherently drifting particles (cosmology), not on vibrating
/// crystals.
fn second_order(ctx: &mut Ctx) -> Table {
    let mut t =
        Table::new("Ablation — MT vs MT2 (BS 10)", &["dataset", "eps", "MT", "MT2", "MT2 gain %"]);
    // At a loose bound, per-snapshot displacement quantizes to zero and
    // first-order prediction is already free; the second order pays off
    // once the bound is tight relative to the coherent drift.
    for kind in [DatasetKind::Hacc1, DatasetKind::Hacc2, DatasetKind::CopperA, DatasetKind::Lj] {
        let d = ctx.dataset(kind).clone();
        for eps_rel in [1e-3, 1e-5] {
            let mut mt = mdz_codec(Method::Mt);
            let mut mt2 = mdz_codec(Method::Mt2);
            let (a, _) = run_dataset(&mut mt, &d, eps_rel, 10, false);
            let (b, _) = run_dataset(&mut mt2, &d, eps_rel, 10, false);
            t.row(vec![
                kind.name().into(),
                format!("{eps_rel:.0e}"),
                fmt(a.ratio()),
                fmt(b.ratio()),
                fmt((b.ratio() / a.ratio() - 1.0) * 100.0),
            ]);
        }
    }
    ctx.emit("ablation_second_order", t)
}

/// Detect the level grid once per stream (the paper's choice) vs re-detect
/// per buffer: same ratio, meaningful speed difference.
fn grid_reuse(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Ablation — level-grid reuse (Copper-B, VQ, BS 10)",
        &["strategy", "ratio", "comp MB/s"],
    );
    let d = ctx.dataset(DatasetKind::CopperB).clone();
    let eps = axis_eps(&d, 0, 1e-3);
    let series = d.axis_series(0);
    let raw = series.len() * d.atoms() * 8;
    // Reuse: one stateful compressor (grid detected once).
    {
        let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_method(Method::Vq);
        let mut c = Compressor::new(cfg);
        let mut total = 0usize;
        let t0 = Instant::now();
        for chunk in series.chunks(10) {
            total += c.compress_buffer(chunk).expect("compress").len();
        }
        let secs = t0.elapsed().as_secs_f64();
        t.row(vec![
            "detect once (paper)".into(),
            fmt(raw as f64 / total as f64),
            fmt(raw as f64 / 1e6 / secs),
        ]);
    }
    // Redetect: a fresh compressor per buffer.
    {
        let mut total = 0usize;
        let t0 = Instant::now();
        for chunk in series.chunks(10) {
            let cfg = MdzConfig::new(ErrorBound::Absolute(eps)).with_method(Method::Vq);
            total += Compressor::new(cfg).compress_buffer(chunk).expect("compress").len();
        }
        let secs = t0.elapsed().as_secs_f64();
        t.row(vec![
            "re-detect per buffer".into(),
            fmt(raw as f64 / total as f64),
            fmt(raw as f64 / 1e6 / secs),
        ]);
    }
    ctx.emit("ablation_grid_reuse", t)
}

/// Allow boxed codec reuse inside this module.
#[allow(dead_code)]
fn _codec_type_check(c: Box<dyn Codec>) -> &'static str {
    c.name()
}
