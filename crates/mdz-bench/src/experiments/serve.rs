//! Server-throughput benchmark: a load generator drives both serving
//! engines (`threads` and `epoll`) with C concurrent loopback connections
//! × a fixed pipelining depth, and reports sustained requests/second plus
//! p50/p99 request latency per cell.
//!
//! Not a paper artifact: the paper's pipeline compresses offline. This
//! experiment sizes the serving layer the store grew into. Each cell boots
//! a fresh in-process server so its metrics are exactly the cell's
//! traffic; after the cell drains, the generator cross-checks the server's
//! `server.request_seconds` histogram count against the number of requests
//! it completed — the two are independent tallies of the same stream, so
//! any disagreement means dropped or double-counted requests
//! (`accounting_exact` in the JSON). Closed-loop cells keep `depth`
//! requests in flight per connection; the open-burst cell writes every
//! request before reading any response (unbounded in-flight), probing the
//! incremental decoder and write-queue backpressure. The machine-readable
//! `BENCH_server.json` is schema-checked by `tests/server_json.rs` and
//! `scripts/verify.sh`.

use super::Ctx;
use crate::harness::TimingSummary;
use crate::json::Json;
use crate::table::{fmt, Table};
use mdz_core::{ErrorBound, Frame, MdzConfig};
use mdz_sim::Scale;
use mdz_store::protocol::{read_message, write_message, Request, Status};
use mdz_store::{write_store, Engine, Server, ServerConfig, StoreOptions, StoreReader};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Frames in the served archive. Small on purpose: every GET decodes from
/// a warm cache, so cells measure the request machinery, not decompression.
const N_FRAMES: usize = 64;
/// Atoms per frame (a GET of [`SPAN`] frames answers ~1.5 KiB).
const N_ATOMS: usize = 16;
/// Frames per GET request.
const SPAN: usize = 4;
/// Requests kept in flight per connection in closed-loop cells.
const DEPTH: usize = 4;

/// One measured (engine × mode × concurrency) cell.
struct Cell {
    engine: Engine,
    mode: &'static str,
    connections: usize,
    depth: usize,
    requests: usize,
    wall_seconds: f64,
    requests_per_second: f64,
    latency: TimingSummary,
    accounting_exact: bool,
}

/// Load-generator sweep over both engines; writes `BENCH_server.json`
/// alongside the usual CSV.
pub fn serve(ctx: &mut Ctx) -> Vec<Table> {
    let image = archive_image();
    let concurrencies: Vec<usize> =
        if matches!(ctx.scale, Scale::Test) { vec![1, 4] } else { vec![1, 64, 1024] };
    let mut engines = vec![Engine::Threads];
    if cfg!(any(target_os = "linux", target_os = "macos")) {
        engines.push(Engine::Epoll);
    }

    let mut cells = Vec::new();
    for &engine in &engines {
        for &c in &concurrencies {
            let per_client = requests_per_client(ctx.scale, c);
            cells.push(run_cell(engine, &image, c, per_client, DEPTH));
        }
        // One open-burst cell per engine at a mid concurrency: every
        // request written before any response is read.
        let c_open = *concurrencies.iter().filter(|&&c| c <= 64).max().unwrap_or(&1);
        cells.push(run_cell(engine, &image, c_open, requests_per_client(ctx.scale, c_open), 0));
    }

    write_json(ctx, &cells);

    let mut table = Table::new(
        &format!("Server throughput ({N_FRAMES} frames × {N_ATOMS} atoms, GETs of {SPAN})"),
        &["engine", "mode", "conns", "depth", "requests", "req/s", "p50 ms", "p99 ms", "exact"],
    );
    for cell in &cells {
        table.row(vec![
            engine_name(cell.engine).to_string(),
            cell.mode.to_string(),
            cell.connections.to_string(),
            cell.depth.to_string(),
            cell.requests.to_string(),
            fmt(cell.requests_per_second),
            fmt(cell.latency.p50 * 1e3),
            fmt(cell.latency.p99 * 1e3),
            cell.accounting_exact.to_string(),
        ]);
    }
    vec![ctx.emit("serve", table)]
}

/// Per-connection request budget: smaller at high concurrency so every
/// cell finishes in bounded wall time on a small host.
fn requests_per_client(scale: Scale, connections: usize) -> usize {
    if matches!(scale, Scale::Test) {
        16
    } else if connections <= 1 {
        256
    } else if connections <= 64 {
        32
    } else {
        4
    }
}

/// A deterministic synthetic archive (no dataset generation: the serving
/// layer is the thing under test, so the payload just has to be stable).
fn archive_image() -> Vec<u8> {
    let frames: Vec<Frame> = (0..N_FRAMES)
        .map(|t| {
            let gen = |axis: usize| -> Vec<f64> {
                (0..N_ATOMS)
                    .map(|i| {
                        let p = (i * 3 + axis) as f64;
                        p + (t as f64 * 0.31 + p * 0.17).sin() * 0.5
                    })
                    .collect()
            };
            Frame::new(gen(0), gen(1), gen(2))
        })
        .collect();
    let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-3)));
    opts.buffer_size = 8;
    opts.epoch_interval = 2;
    write_store(&frames, &[], &[], &opts).expect("write archive")
}

/// Boots a fresh server on `engine`, runs `connections` generator threads
/// against it (`depth` == 0 means open-burst), and measures the cell.
fn run_cell(
    engine: Engine,
    image: &[u8],
    connections: usize,
    per_client: usize,
    depth: usize,
) -> Cell {
    let reader = StoreReader::open(image.to_vec()).expect("open archive");
    let registry = reader.recorder();
    let cfg = ServerConfig {
        engine,
        threads: 2,
        max_connections: connections * 2 + 16,
        idle_timeout: Duration::from_secs(600),
        ..ServerConfig::default()
    };
    let server = Server::bind(reader, "127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle().expect("handle");
    let serving = std::thread::spawn(move || server.run());

    let barrier = std::sync::Arc::new(Barrier::new(connections + 1));
    let clients: Vec<_> = (0..connections)
        .map(|_| {
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::Builder::new()
                // 1024 generator threads on a small host: keep stacks tiny.
                .stack_size(128 << 10)
                .spawn(move || {
                    barrier.wait();
                    run_client(addr, per_client, depth)
                })
                .expect("spawn generator")
        })
        .collect();

    barrier.wait();
    let t0 = Instant::now();
    let mut latencies = Vec::with_capacity(connections * per_client);
    for c in clients {
        let samples = c.join().expect("generator thread").expect("generator i/o");
        latencies.extend(samples);
    }
    let wall = t0.elapsed().as_secs_f64();
    let completed = latencies.len();
    assert_eq!(completed, connections * per_client, "a generator lost requests");

    // Independent cross-check: the server observed exactly one
    // request_seconds sample per completed request (the METRICS fetch
    // below is excluded — its snapshot is taken before it is accounted).
    let server_count = fetch_request_count(addr).expect("metrics fetch");
    let accounting_exact = server_count == completed as u64;

    handle.shutdown();
    serving.join().expect("server thread").expect("server run");
    // The registry must agree with the wire-fetched snapshot once drained.
    debug_assert!(registry.counter("server.requests.get") >= completed as u64);

    Cell {
        engine,
        mode: if depth == 0 { "open-burst" } else { "closed" },
        connections,
        depth: if depth == 0 { per_client } else { depth },
        requests: completed,
        wall_seconds: wall,
        requests_per_second: completed as f64 / wall.max(1e-12),
        latency: TimingSummary::from_samples(&latencies),
        accounting_exact,
    }
}

/// One generator connection: GETs of [`SPAN`] frames at rotating offsets.
/// `depth` > 0 keeps that many requests in flight (closed loop); `depth`
/// == 0 writes all `requests` first, then reads all responses
/// (open burst).
fn run_client(addr: SocketAddr, requests: usize, depth: usize) -> io::Result<Vec<f64>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(300)))?;
    stream.set_nodelay(true)?;
    let encode = |i: usize| {
        let start = (i * SPAN) % (N_FRAMES - SPAN);
        Request::Get { start: start as u64, end: (start + SPAN) as u64 }.encode()
    };
    let max_inflight = if depth == 0 { requests } else { depth };
    let mut sent = 0usize;
    let mut inflight: VecDeque<Instant> = VecDeque::with_capacity(max_inflight);
    let mut latencies = Vec::with_capacity(requests);
    while latencies.len() < requests {
        while sent < requests && inflight.len() < max_inflight {
            write_message(&mut stream, &encode(sent))?;
            inflight.push_back(Instant::now());
            sent += 1;
        }
        let body = read_message(&mut stream, 1 << 20)?
            .ok_or_else(|| io::Error::other("server closed mid-cell"))?;
        if body.first() != Some(&(Status::Ok as u8)) {
            return Err(io::Error::other(format!("non-OK response: {:?}", body.first())));
        }
        let sent_at = inflight.pop_front().expect("response without a request");
        latencies.push(sent_at.elapsed().as_secs_f64());
    }
    Ok(latencies)
}

/// Fetches `server.request_seconds.count` over the wire via METRICS.
fn fetch_request_count(addr: SocketAddr) -> io::Result<u64> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    write_message(&mut stream, &Request::Metrics.encode())?;
    let body = read_message(&mut stream, 1 << 26)?
        .ok_or_else(|| io::Error::other("server closed during METRICS"))?;
    let snapshot = mdz_store::protocol::parse_metrics(&body).map_err(io::Error::other)?;
    Ok(snapshot.histogram("server.request_seconds").map(|h| h.count).unwrap_or(0))
}

fn engine_name(engine: Engine) -> &'static str {
    match engine {
        Engine::Threads => "threads",
        Engine::Epoll => "epoll",
    }
}

fn write_json(ctx: &Ctx, cells: &[Cell]) {
    let timing = |t: &TimingSummary| {
        Json::obj(vec![
            ("min_seconds", Json::Num(t.min)),
            ("median_seconds", Json::Num(t.median)),
            ("mean_seconds", Json::Num(t.mean)),
            ("p50_seconds", Json::Num(t.p50)),
            ("p99_seconds", Json::Num(t.p99)),
            ("samples", Json::Num(t.reps as f64)),
        ])
    };
    let cell_docs: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("engine", Json::Str(engine_name(c.engine).into())),
                ("mode", Json::Str(c.mode.into())),
                ("connections", Json::Num(c.connections as f64)),
                ("pipeline_depth", Json::Num(c.depth as f64)),
                ("requests", Json::Num(c.requests as f64)),
                ("wall_seconds", Json::Num(c.wall_seconds)),
                ("requests_per_second", Json::Num(c.requests_per_second)),
                ("latency", timing(&c.latency)),
                ("accounting_exact", Json::Bool(c.accounting_exact)),
            ])
        })
        .collect();
    let hw_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let doc = Json::obj(vec![
        ("experiment", Json::Str("serve".into())),
        ("scale", Json::Str(format!("{:?}", ctx.scale).to_lowercase())),
        ("n_frames", Json::Num(N_FRAMES as f64)),
        ("n_atoms", Json::Num(N_ATOMS as f64)),
        ("get_span_frames", Json::Num(SPAN as f64)),
        (
            "host",
            Json::obj(vec![
                ("hw_threads", Json::Num(hw_threads as f64)),
                ("os", Json::Str(std::env::consts::OS.into())),
                (
                    "caveats",
                    Json::Str(
                        "loopback TCP on a shared host; generator threads and server shards \
                         contend for the same cores, so absolute req/s undercounts what the \
                         engine sustains on dedicated hardware"
                            .into(),
                    ),
                ),
            ]),
        ),
        ("cells", Json::Arr(cell_docs)),
    ]);
    let path = ctx.out_dir.join("BENCH_server.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, doc.render()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
