//! Random-access read latency on the indexed store.
//!
//! Not a paper artifact: the paper's pipeline is stream-only. This
//! experiment quantifies what the `mdz-store` epoch index buys — the
//! latency of reading one buffer's frames at a random position through
//! `StoreReader` (cold cache, so every probe decodes its epoch) versus
//! decoding the whole archive sequentially, swept over epoch intervals.
//! Per-request percentiles (p50/p99) come from [`TimingSummary`]; the
//! machine-readable `BENCH_latency.json` is schema-checked by
//! `tests/latency_json.rs` and `scripts/verify.sh`.

use super::Ctx;
use crate::harness::{repeat_timed, TimingSummary};
use crate::json::Json;
use crate::table::{fmt, Table};
use mdz_core::{ErrorBound, Frame, MdzConfig};
use mdz_sim::{DatasetKind, Scale};
use mdz_store::{write_store, ReaderOptions, StoreOptions, StoreReader};
use std::time::Instant;

/// Epoch intervals (buffers per epoch) the sweep covers.
const INTERVALS: &[usize] = &[1, 4, 16];

struct Entry {
    epoch_interval: usize,
    archive_bytes: usize,
    n_epochs: usize,
    probe: TimingSummary,
    sequential: TimingSummary,
    buffers_per_probe: f64,
}

/// Epoch-interval sweep of random-access vs sequential read latency;
/// writes `BENCH_latency.json` alongside the usual CSV.
pub fn latency(ctx: &mut Ctx) -> Vec<Table> {
    let kind = DatasetKind::CopperB;
    let reps = ctx.reps.max(1);
    let dataset = ctx.dataset(kind);
    let frames: Vec<Frame> = dataset
        .snapshots
        .iter()
        .map(|s| Frame::new(s.x.clone(), s.y.clone(), s.z.clone()))
        .collect();
    let n_frames = frames.len();
    let raw_bytes = n_frames * dataset.atoms() * 3 * 8;
    let bs = if matches!(ctx.scale, Scale::Test) { 2 } else { 10 };
    // Enough probes for the p99 rank to sit off the maximum at full scale.
    let n_probes = if matches!(ctx.scale, Scale::Test) { 8 } else { 64 };

    let mut entries: Vec<Entry> = Vec::new();
    for &k in INTERVALS {
        let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::ValueRangeRelative(1e-3)));
        opts.buffer_size = bs;
        opts.epoch_interval = k;
        let archive = write_store(&frames, &[], &[], &opts).expect("write store");
        let archive_bytes = archive.len();

        // Probe latency: one buffer-sized read per request at positions
        // spread deterministically over the archive. cache_epochs = 1 keeps
        // each probe cold (the request must decode its epoch) unless two
        // consecutive probes land in the same epoch.
        let reader = StoreReader::with_options(
            archive.clone(),
            ReaderOptions { cache_epochs: 1, ..Default::default() },
        )
        .expect("open store");
        let n_buffers = n_frames.div_ceil(bs);
        let mut samples = Vec::with_capacity(n_probes * reps);
        let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (k as u64);
        for _ in 0..n_probes * reps {
            // xorshift so probe order is deterministic but unclustered.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let b = (state % n_buffers as u64) as usize;
            let start = b * bs;
            let end = (start + bs).min(n_frames);
            let t0 = Instant::now();
            let got = reader.read_frames(start..end).expect("probe read");
            samples.push(t0.elapsed().as_secs_f64());
            assert_eq!(got.len(), end - start);
        }
        let probe = TimingSummary::from_samples(&samples);
        let buffers_per_probe = reader.stats().buffers_decoded as f64 / (n_probes * reps) as f64;

        // Sequential baseline: decode the whole archive front to back with
        // a fresh reader each repetition (nothing cached).
        let sequential = repeat_timed(reps, || {
            let seq_reader = StoreReader::open(archive.clone()).expect("open store");
            let t0 = Instant::now();
            let all = seq_reader.read_frames(0..n_frames).expect("sequential read");
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(all.len(), n_frames);
            dt
        });

        entries.push(Entry {
            epoch_interval: k,
            archive_bytes,
            n_epochs: n_buffers.div_ceil(k),
            probe,
            sequential,
            buffers_per_probe,
        });
    }

    write_json(ctx, kind, raw_bytes, n_frames, bs, n_probes, reps, &entries);

    let mut table = Table::new(
        &format!(
            "Random-access read latency ({}, {} probes × {} reps, buffer = {} frames)",
            kind.name(),
            n_probes,
            reps,
            bs
        ),
        &[
            "epoch interval",
            "epochs",
            "archive bytes",
            "probe p50 s",
            "probe p99 s",
            "seq median s",
            "speedup (seq/p50)",
            "buffers/probe",
        ],
    );
    for e in &entries {
        table.row(vec![
            e.epoch_interval.to_string(),
            e.n_epochs.to_string(),
            e.archive_bytes.to_string(),
            fmt(e.probe.p50),
            fmt(e.probe.p99),
            fmt(e.sequential.median),
            fmt(e.sequential.median / e.probe.p50.max(1e-12)),
            fmt(e.buffers_per_probe),
        ]);
    }
    vec![ctx.emit("latency", table)]
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    ctx: &Ctx,
    kind: DatasetKind,
    raw_bytes: usize,
    n_frames: usize,
    bs: usize,
    n_probes: usize,
    reps: usize,
    entries: &[Entry],
) {
    let timing = |t: &TimingSummary| {
        Json::obj(vec![
            ("min_seconds", Json::Num(t.min)),
            ("median_seconds", Json::Num(t.median)),
            ("mean_seconds", Json::Num(t.mean)),
            ("p50_seconds", Json::Num(t.p50)),
            ("p99_seconds", Json::Num(t.p99)),
            ("samples", Json::Num(t.reps as f64)),
        ])
    };
    let doc = Json::obj(vec![
        ("experiment", Json::Str("latency".into())),
        ("scale", Json::Str(format!("{:?}", ctx.scale).to_lowercase())),
        ("dataset", Json::Str(kind.name().into())),
        ("raw_bytes", Json::Num(raw_bytes as f64)),
        ("n_frames", Json::Num(n_frames as f64)),
        ("buffer_frames", Json::Num(bs as f64)),
        ("probes", Json::Num(n_probes as f64)),
        ("reps", Json::Num(reps as f64)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("epoch_interval", Json::Num(e.epoch_interval as f64)),
                            ("n_epochs", Json::Num(e.n_epochs as f64)),
                            ("archive_bytes", Json::Num(e.archive_bytes as f64)),
                            (
                                "speedup_vs_sequential",
                                Json::Num(e.sequential.median / e.probe.p50.max(1e-12)),
                            ),
                            ("buffers_per_probe", Json::Num(e.buffers_per_probe)),
                            ("probe_timing", timing(&e.probe)),
                            ("sequential_timing", timing(&e.sequential)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = ctx.out_dir.join("BENCH_latency.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, doc.render()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
