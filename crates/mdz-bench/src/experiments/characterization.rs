//! Characterization experiments: Table I, Figs. 3–5, Fig. 8, Table II.

use super::Ctx;
use crate::table::{fmt, Table};
use mdz_analysis::{histogram::Histogram, series, similarity::similarity};
use mdz_sim::DatasetKind;

/// The six datasets the paper's Figs. 3–5 panels show.
const FIG_PANEL: [DatasetKind; 6] = [
    DatasetKind::CopperB,
    DatasetKind::Adk,
    DatasetKind::HeliumA,
    DatasetKind::HeliumB,
    DatasetKind::Pt,
    DatasetKind::Lj,
];

/// Table I: dataset inventory (paper dims + this reproduction's dims).
pub fn table1(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Table I — MD simulation datasets",
        &["Application", "State", "Code", "Paper snaps", "Paper atoms", "Our snaps", "Our atoms"],
    );
    for kind in DatasetKind::MD {
        let (state, code, pm, pn) = kind.paper_row();
        let d = ctx.dataset(kind);
        let (m, n) = (d.len(), d.atoms());
        t.row(vec![
            kind.name().into(),
            state.into(),
            code.into(),
            pm.to_string(),
            pn.to_string(),
            m.to_string(),
            n.to_string(),
        ]);
    }
    vec![ctx.emit("table1", t)]
}

/// Fig. 3: spatial patterns — a window of snapshot 0 per dataset, plus the
/// roughness/peakedness classification behind the takeaways.
pub fn fig3(ctx: &mut Ctx) -> Vec<Table> {
    let mut curve = Table::new(
        "Fig 3 — spatial series (x-axis, snapshot 0, first 256 atoms)",
        &["dataset", "index", "value"],
    );
    let mut class = Table::new(
        "Fig 3 — spatial pattern classification",
        &["dataset", "spatial roughness", "pattern"],
    );
    for kind in FIG_PANEL {
        let d = ctx.dataset(kind);
        let snap = &d.snapshots[0];
        let window = series::spatial_window(&snap.x, 0, 256);
        for (i, &v) in window.iter().enumerate() {
            curve.row(vec![kind.name().into(), i.to_string(), fmt(v)]);
        }
        let rough = series::spatial_roughness(&snap.x);
        let peaked = Histogram::build(&snap.x, 100).peakedness();
        let pattern = if peaked > 2.0 {
            if rough > 0.5 {
                "zigzag levels"
            } else {
                "stair-wise levels"
            }
        } else {
            "random/uniform"
        };
        class.row(vec![kind.name().into(), fmt(rough), pattern.into()]);
    }
    vec![ctx.emit("fig3_series", curve), ctx.emit("fig3_class", class)]
}

/// Fig. 4: value distributions — histogram + multi-peak classification.
pub fn fig4(ctx: &mut Ctx) -> Vec<Table> {
    let mut hist =
        Table::new("Fig 4 — value distribution (x-axis)", &["dataset", "bin center", "count"]);
    let mut class = Table::new(
        "Fig 4 — distribution classification",
        &["dataset", "peakedness", "peaks", "class"],
    );
    for kind in FIG_PANEL {
        let d = ctx.dataset(kind);
        let all: Vec<f64> = d.snapshots[0].x.clone();
        let h = Histogram::build(&all, 80);
        for (b, &c) in h.counts.iter().enumerate() {
            hist.row(vec![kind.name().into(), fmt(h.center(b)), c.to_string()]);
        }
        let p = h.peakedness();
        let peaks = h.peak_count(2.0);
        let label = if p > 2.0 { "multi-peak" } else { "uniform-like" };
        class.row(vec![kind.name().into(), fmt(p), peaks.to_string(), label.into()]);
    }
    vec![ctx.emit("fig4_hist", hist), ctx.emit("fig4_class", class)]
}

/// Fig. 5: temporal correlations — selected particle trajectories and the
/// roughness split into the paper's two regimes.
pub fn fig5(ctx: &mut Ctx) -> Vec<Table> {
    let mut curve = Table::new(
        "Fig 5 — temporal series (x-axis, particles 0/1/2)",
        &["dataset", "particle", "snapshot", "value"],
    );
    let mut class =
        Table::new("Fig 5 — temporal regime", &["dataset", "temporal roughness", "regime"]);
    for kind in FIG_PANEL {
        let d = ctx.dataset(kind);
        let xs = d.axis_series(0);
        for p in 0..3.min(d.atoms()) {
            let ts = series::temporal_series(&xs, p);
            for (s, &v) in ts.iter().enumerate() {
                curve.row(vec![kind.name().into(), p.to_string(), s.to_string(), fmt(v)]);
            }
        }
        let rough = series::temporal_roughness(&xs);
        // Normalize by the spatial scale so the split is dimensionless.
        let spatial = series::spatial_roughness(&xs[0]).max(1e-12);
        let regime = if rough / spatial < 0.2 { "changes slightly" } else { "changes largely" };
        class.row(vec![kind.name().into(), fmt(rough), regime.into()]);
    }
    vec![ctx.emit("fig5_series", curve), ctx.emit("fig5_class", class)]
}

/// Fig. 8: similarity of each snapshot to snapshot 0 (Eq. 2).
pub fn fig8(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 8 — similarity to snapshot 0 (τ = 1e-3)",
        &["dataset", "snapshot %", "similarity"],
    );
    let tau = 1e-3;
    for kind in [DatasetKind::CopperA, DatasetKind::CopperB, DatasetKind::Pt, DatasetKind::Adk] {
        let d = ctx.dataset(kind);
        let m = d.len();
        let s0 = &d.snapshots[0].x;
        for pct in (0..=100).step_by(10) {
            let i = ((pct as usize) * (m - 1)) / 100;
            let s = similarity(s0, &d.snapshots[i].x, tau);
            t.row(vec![kind.name().into(), pct.to_string(), fmt(s)]);
        }
    }
    vec![ctx.emit("fig8", t)]
}

/// Table II: mean absolute prediction error — snapshot-0-based (MT's
/// predictor) versus Lorenzo (SZ's spatial predictor).
pub fn table2(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Table II — mean |prediction error| (x-axis)",
        &["dataset", "snapshot-0 predictor", "Lorenzo (spatial)", "winner"],
    );
    for kind in [DatasetKind::CopperA, DatasetKind::Pt, DatasetKind::HeliumA, DatasetKind::CopperB]
    {
        let d = ctx.dataset(kind);
        let xs = d.axis_series(0);
        let s0 = &xs[0];
        let mut e_ref = 0.0f64;
        let mut e_lor = 0.0f64;
        let mut count = 0usize;
        for snap in xs.iter().skip(1) {
            for i in 0..snap.len() {
                e_ref += (snap[i] - s0[i]).abs();
                let lor = if i == 0 { 0.0 } else { snap[i - 1] };
                e_lor += (snap[i] - lor).abs();
                count += 1;
            }
        }
        let (a, b) = (e_ref / count as f64, e_lor / count as f64);
        let winner = if a < b { "snapshot-0" } else { "Lorenzo" };
        t.row(vec![kind.name().into(), fmt(a), fmt(b), winner.into()]);
    }
    vec![ctx.emit("table2", t)]
}
