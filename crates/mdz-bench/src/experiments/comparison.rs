//! Comparative evaluation: Figs. 12–16 and Tables IV–VI.

use super::Ctx;
use crate::harness::{eps_for_ratio, run_dataset, standard_codecs, sz2_1d_codec};
use crate::table::{fmt, Table};
use mdz_analysis::rdf::{rdf, rdf_distance, RdfConfig};
use mdz_core::Codec;
use mdz_lossless as lossless;
use mdz_sim::{DatasetKind, Scale};

/// Fig. 12: compression ratio of every lossy compressor on every MD
/// dataset across buffer sizes (ε = 1e-3 value-range).
pub fn fig12(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 12 — CR of all lossy compressors (eps 1e-3)",
        &["dataset", "BS", "compressor", "ratio"],
    );
    let bss: &[usize] = if ctx.scale == Scale::Test { &[4] } else { &[10, 100] };
    for kind in DatasetKind::MD {
        let d = ctx.dataset(kind).clone();
        for &bs in bss {
            for codec in standard_codecs().iter_mut() {
                let (m, _) = run_dataset(codec, &d, 1e-3, bs, false);
                t.row(vec![
                    kind.name().into(),
                    bs.to_string(),
                    codec.name().into(),
                    fmt(m.ratio()),
                ]);
            }
        }
    }
    vec![ctx.emit("fig12", t)]
}

/// Fig. 13: rate-distortion (bit rate vs PSNR) across error bounds.
pub fn fig13(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 13 — rate-distortion (BS 10)",
        &["dataset", "compressor", "eps", "bit rate", "PSNR dB"],
    );
    let eps_list: &[f64] =
        if ctx.scale == Scale::Test { &[1e-2, 1e-4] } else { &[1e-1, 1e-2, 1e-3, 1e-4, 1e-5] };
    let kinds: &[DatasetKind] = if ctx.scale == Scale::Test {
        &[DatasetKind::CopperB, DatasetKind::Lj]
    } else {
        &DatasetKind::MD
    };
    let bs = if ctx.scale == Scale::Test { 4 } else { 10 };
    for &kind in kinds {
        let d = ctx.dataset(kind).clone();
        for codec in standard_codecs().iter_mut() {
            for &eps in eps_list {
                let (m, _) = run_dataset(codec, &d, eps, bs, false);
                t.row(vec![
                    kind.name().into(),
                    codec.name().into(),
                    format!("{eps:.0e}"),
                    fmt(m.bit_rate()),
                    fmt(m.psnr),
                ]);
            }
        }
    }
    vec![ctx.emit("fig13", t)]
}

/// Fig. 14: RDF fidelity at a common compression ratio (Copper-B, CR ≈ 10).
pub fn fig14(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 14 — RDF distance to original at CR≈10 (Copper-B)",
        &["compressor", "achieved CR", "RDF L1 distance"],
    );
    let d = ctx.dataset(DatasetKind::CopperB).clone();
    let bs = if ctx.scale == Scale::Test { 4 } else { 10 };
    let box_len = d.box_len.expect("crystal dataset has a box");
    let cfg = RdfConfig { box_len, r_max: (box_len / 2.0).min(8.0), bins: 64 };
    let s0 = &d.snapshots[0];
    let (_, g_orig) = rdf(&s0.x, &s0.y, &s0.z, &cfg);
    for codec in standard_codecs().iter_mut() {
        let eps = eps_for_ratio(codec, &d, bs, 10.0);
        let (m, restored) = run_dataset(codec, &d, eps, bs, true);
        let rs = &restored.expect("kept")[0];
        let (_, g_dec) = rdf(&rs.x, &rs.y, &rs.z, &cfg);
        t.row(vec![codec.name().into(), fmt(m.ratio()), fmt(rdf_distance(&g_orig, &g_dec))]);
    }
    vec![ctx.emit("fig14", t)]
}

/// Fig. 15: compression/decompression throughput on every dataset.
pub fn fig15(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 15 — throughput MB/s (eps 1e-3, BS 10)",
        &["dataset", "compressor", "comp MB/s", "decomp MB/s"],
    );
    let bs = if ctx.scale == Scale::Test { 4 } else { 10 };
    for kind in DatasetKind::MD {
        let d = ctx.dataset(kind).clone();
        for codec in standard_codecs().iter_mut() {
            let (m, _) = run_dataset(codec, &d, 1e-3, bs, false);
            t.row(vec![
                kind.name().into(),
                codec.name().into(),
                fmt(m.compress_mbps()),
                fmt(m.decompress_mbps()),
            ]);
        }
    }
    vec![ctx.emit("fig15", t)]
}

/// Fig. 16: generalizability — CRs on the HACC-like cosmology datasets.
///
/// Includes the MT2 extension (`MDZ+`, adaptive over the extended
/// candidate set) alongside the paper-faithful line-up: second-order
/// prediction is exactly what coherently drifting N-body data rewards.
pub fn fig16(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 16 — CR on HACC datasets",
        &["dataset", "eps", "BS", "compressor", "ratio"],
    );
    let bss: &[usize] = if ctx.scale == Scale::Test { &[4] } else { &[10] };
    for kind in DatasetKind::HACC {
        let d = ctx.dataset(kind).clone();
        for &eps_rel in &[1e-3, 1e-5] {
            for &bs in bss {
                for codec in standard_codecs().iter_mut() {
                    let (m, _) = run_dataset(codec, &d, eps_rel, bs, false);
                    t.row(vec![
                        kind.name().into(),
                        format!("{eps_rel:.0e}"),
                        bs.to_string(),
                        codec.name().into(),
                        fmt(m.ratio()),
                    ]);
                }
                let mut ext = crate::harness::mdz_extended_codec();
                let (m, _) = run_dataset(&mut ext, &d, eps_rel, bs, false);
                t.row(vec![
                    kind.name().into(),
                    format!("{eps_rel:.0e}"),
                    bs.to_string(),
                    ext.name().into(),
                    fmt(m.ratio()),
                ]);
            }
        }
    }
    vec![ctx.emit("fig16", t)]
}

/// Seed-variance companion to Fig. 12: compression ratios over several
/// dataset seeds, reported as mean ± sample standard deviation. Quantifies
/// how much of any inter-codec margin is generator noise.
pub fn fig12var(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 12 (variance) — CR mean ± std over 3 seeds (eps 1e-3, BS 10)",
        &["dataset", "compressor", "mean CR", "std"],
    );
    let bs = if ctx.scale == Scale::Test { 4 } else { 10 };
    let kinds: &[DatasetKind] = if ctx.scale == Scale::Test {
        &[DatasetKind::CopperB]
    } else {
        &[DatasetKind::CopperB, DatasetKind::HeliumB, DatasetKind::Adk, DatasetKind::Lj]
    };
    for &kind in kinds {
        let mut per_codec: Vec<(String, Vec<f64>)> = Vec::new();
        for k in 0..3u64 {
            let d = mdz_sim::datasets::generate(kind, ctx.scale, ctx.seed ^ (k * 0x9E37_79B9));
            for (ci, codec) in standard_codecs().iter_mut().enumerate() {
                let (m, _) = run_dataset(codec, &d, 1e-3, bs, false);
                if k == 0 {
                    per_codec.push((codec.name().to_string(), vec![m.ratio()]));
                } else {
                    per_codec[ci].1.push(m.ratio());
                }
            }
        }
        for (name, ratios) in per_codec {
            let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
            let var = ratios.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>()
                / (ratios.len() - 1) as f64;
            t.row(vec![kind.name().into(), name, fmt(mean), fmt(var.sqrt())]);
        }
    }
    vec![ctx.emit("fig12var", t)]
}

/// Table IV: SZ2 1-D vs 2-D mode (Pt, LJ, Helium-A; ε = 1e-3, BS = 10).
pub fn table4(ctx: &mut Ctx) -> Vec<Table> {
    let mut t =
        Table::new("Table IV — SZ2 1D vs 2D CR (eps 1e-3, BS 10)", &["dataset", "mode", "ratio"]);
    let bs = if ctx.scale == Scale::Test { 4 } else { 10 };
    for kind in [DatasetKind::Pt, DatasetKind::Lj, DatasetKind::HeliumA] {
        let d = ctx.dataset(kind).clone();
        let mut one_d = sz2_1d_codec();
        let (m1, _) = run_dataset(&mut one_d, &d, 1e-3, bs, false);
        let mut codecs = standard_codecs();
        let sz2 = &mut codecs[1];
        assert_eq!(sz2.name(), "SZ2");
        let (m2, _) = run_dataset(sz2, &d, 1e-3, bs, false);
        t.row(vec![kind.name().into(), "1D".into(), fmt(m1.ratio())]);
        t.row(vec![kind.name().into(), "2D".into(), fmt(m2.ratio())]);
    }
    vec![ctx.emit("table4", t)]
}

/// Table V: lossless compressors top out around 1–2× on MD data.
pub fn table5(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Table V — lossless compression ratios",
        &["dataset", "LZ-fast", "LZ-default", "LZ-high", "Fpzip-like", "FPC", "Gorilla"],
    );
    for kind in [DatasetKind::CopperA, DatasetKind::HeliumB, DatasetKind::Adk, DatasetKind::Lj] {
        let d = ctx.dataset(kind).clone();
        // Concatenate the x-axis of up to 10 snapshots (lossless is slow).
        let take = d.len().min(10);
        let mut values = Vec::new();
        for s in d.snapshots.iter().take(take) {
            values.extend_from_slice(&s.x);
        }
        let raw_bytes = values.len() * 8;
        let bytes = lossless::f64s_to_bytes(&values);
        let cr = |c: usize| fmt(raw_bytes as f64 / c as f64);
        t.row(vec![
            kind.name().into(),
            cr(lossless::lz77::compress(&bytes, lossless::Level::Fast).len()),
            cr(lossless::lz77::compress(&bytes, lossless::Level::Default).len()),
            cr(lossless::lz77::compress(&bytes, lossless::Level::High).len()),
            cr(lossless::fpzip_like::compress(&values).len()),
            cr(lossless::fpc::compress(&values).len()),
            cr(lossless::gorilla::compress(&values).len()),
        ]);
    }
    vec![ctx.emit("table5", t)]
}

/// Table VI: MaxError and NRMSE at a common CR ≈ 10 (Copper-B).
pub fn table6(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Table VI — MaxError / NRMSE at CR≈10 (Copper-B, BS 10)",
        &["compressor", "achieved CR", "MaxError", "NRMSE"],
    );
    let d = ctx.dataset(DatasetKind::CopperB).clone();
    let bs = if ctx.scale == Scale::Test { 4 } else { 10 };
    for codec in standard_codecs().iter_mut() {
        // MDB cannot reach CR 10 on this data (the paper excludes it for the
        // same reason); report it at its best effort.
        let eps = eps_for_ratio(codec, &d, bs, 10.0);
        let (m, _) = run_dataset(codec, &d, eps, bs, false);
        t.row(vec![codec.name().into(), fmt(m.ratio()), fmt(m.max_error), fmt(m.nrmse)]);
    }
    vec![ctx.emit("table6", t)]
}
