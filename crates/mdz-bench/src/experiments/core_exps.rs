//! MDZ-internal experiments: quantization-scale sweep (Fig. 9), Seq-1 vs
//! Seq-2 (Table III), adaptive tracking (Figs. 10–11).

use super::Ctx;
use crate::harness::{axis_eps, mdz_codec, mdz_codec_with, run_dataset};
use crate::table::{fmt, Table};
use mdz_core::{Codec, ErrorBound, Method};
use mdz_sim::{DatasetKind, Scale};

/// Fig. 9: compressor performance vs quantization scale on Helium-B
/// (ε = 1e-3 value-range, BS = 10).
pub fn fig9(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 9 — speed vs quantization scale (Helium-B, eps 1e-3, BS 10)",
        &["scale", "method", "comp MB/s", "decomp MB/s", "ratio"],
    );
    let d = ctx.dataset(DatasetKind::HeliumB).clone();
    for scale in [64u32, 256, 1024, 4096, 16384, 65536] {
        for method in [Method::Vq, Method::Vqt, Method::Mt] {
            let mut codec = mdz_codec_with(method, scale / 2, true);
            let (m, _) = run_dataset(&mut codec, &d, 1e-3, 10, false);
            t.row(vec![
                scale.to_string(),
                codec.name().into(),
                fmt(m.compress_mbps()),
                fmt(m.decompress_mbps()),
                fmt(m.ratio()),
            ]);
        }
    }
    vec![ctx.emit("fig9", t)]
}

/// Table III: Seq-1 vs Seq-2 compression ratios per axis (Helium-B, MT,
/// BS = 10, ε ∈ {1e-1, 5e-2, 1e-2}).
pub fn table3(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Table III — Seq-1 vs Seq-2 CR (Helium-B, MT, BS 10)",
        &["axis", "eps", "Seq-1", "Seq-2", "gain %"],
    );
    let d = ctx.dataset(DatasetKind::HeliumB).clone();
    for axis in 0..3 {
        let axis_name = ["X", "Y", "Z"][axis];
        for &eps_rel in &[1e-1, 5e-2, 1e-2] {
            let eps = axis_eps(&d, axis, eps_rel);
            let series = d.axis_series(axis);
            let mut sizes = [0usize; 2];
            for (k, seq2) in [false, true].into_iter().enumerate() {
                let mut codec = mdz_codec_with(Method::Mt, 512, seq2);
                let mut total = 0usize;
                let mut start = 0;
                while start < series.len() {
                    let end = (start + 10).min(series.len());
                    total += codec
                        .compress_buffer(&series[start..end], ErrorBound::Absolute(eps))
                        .expect("compress")
                        .len();
                    start = end;
                }
                sizes[k] = total;
            }
            let raw = series.len() * d.atoms() * 8;
            let cr1 = raw as f64 / sizes[0] as f64;
            let cr2 = raw as f64 / sizes[1] as f64;
            t.row(vec![
                axis_name.into(),
                format!("{eps_rel:.0e}"),
                fmt(cr1),
                fmt(cr2),
                fmt((cr2 / cr1 - 1.0) * 100.0),
            ]);
        }
    }
    vec![ctx.emit("table3", t)]
}

/// Fig. 10: per-buffer CR of VQ/VQT/MT/ADP over a long stream whose regime
/// changes midway; ADP should track the winner.
pub fn fig10(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 10 — per-buffer CR over a regime change (BS 10)",
        &["buffer", "VQ", "VQT", "MT", "ADP", "ADP choice"],
    );
    // Mirror the paper's Copper-B observation (MT best early, VQT best
    // later): a crystal that is quiescent at first, then starts *hopping* —
    // atoms jump to neighbouring lattice sites, staying level-aligned (so
    // VQ-style prediction stays cheap) while drifting ever further from the
    // initial snapshot (so MT's snapshot-0 prediction decays).
    let (n_buffers, bs, n_atoms) = match ctx.scale {
        Scale::Test => (12, 4, 200),
        _ => (60, 10, 1000),
    };
    let eps = 0.01;
    let lambda = 2.5;
    let sigma = 5.0 * eps; // vibration well above one quantization bin
    let corr: f64 = 0.999; // temporally very smooth
    let mut stream: Vec<Vec<f64>> = Vec::new();
    let mut s = ctx.seed | 1;
    let mut gauss = move || {
        // Sum of three xorshift uniforms ≈ gaussian enough here.
        let mut acc = 0.0;
        for _ in 0..3 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            acc += (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        }
        acc
    };
    let mut sites: Vec<f64> = (0..n_atoms).map(|i| (i % 14) as f64 * lambda).collect();
    let mut disp: Vec<f64> = (0..n_atoms).map(|_| gauss() * sigma).collect();
    let half = n_buffers * bs / 2;
    let kick = sigma * (1.0 - corr * corr).sqrt();
    let mut u = ctx.seed ^ 0xD1F7;
    let mut uniform = move || {
        u ^= u << 13;
        u ^= u >> 7;
        u ^= u << 17;
        (u >> 11) as f64 / (1u64 << 53) as f64
    };
    for t_idx in 0..n_buffers * bs {
        stream.push(sites.iter().zip(disp.iter()).map(|(&b, &d)| b + d).collect());
        for d in &mut disp {
            *d = *d * corr + gauss() * kick;
        }
        if t_idx >= half {
            // Thermally activated hops: ~1.5 % of atoms jump one level per
            // snapshot, decorrelating the stream from snapshot 0.
            for s in &mut sites {
                if uniform() < 0.015 {
                    *s += if uniform() < 0.5 { lambda } else { -lambda };
                }
            }
        }
    }

    let mut vq = mdz_codec(Method::Vq);
    let mut vqt = mdz_codec(Method::Vqt);
    let mut mt = mdz_codec(Method::Mt);
    let mut adp_cfg = mdz_core::MdzConfig::new(mdz_core::ErrorBound::Absolute(eps));
    // Re-evaluate every 5 buffers so the switch is visible in a short run
    // (the paper's 50 assumes multi-thousand-snapshot streams).
    adp_cfg.adapt_interval = 5;
    let mut adp = mdz_core::Compressor::new(adp_cfg);
    let raw_per_buffer = bs * n_atoms * 8;
    for b in 0..n_buffers {
        let buf = &stream[b * bs..(b + 1) * bs];
        let sizes: Vec<f64> = [&mut vq, &mut vqt, &mut mt]
            .into_iter()
            .map(|c| {
                let blob = c.compress_buffer(buf, ErrorBound::Absolute(eps)).expect("compress");
                raw_per_buffer as f64 / blob.len() as f64
            })
            .collect();
        let adp_size = adp.compress_buffer(buf).expect("adp").len();
        let choice = adp.current_adaptive_choice().map(|m| m.to_string()).unwrap_or_default();
        t.row(vec![
            b.to_string(),
            fmt(sizes[0]),
            fmt(sizes[1]),
            fmt(sizes[2]),
            fmt(raw_per_buffer as f64 / adp_size as f64),
            choice,
        ]);
    }
    vec![ctx.emit("fig10", t)]
}

/// Fig. 11: ADP vs VQ/VQT/MT across datasets × buffer sizes; ADP should
/// match the best concrete method.
pub fn fig11(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Fig 11 — CR of VQ/VQT/MT/ADP (eps 1e-3)",
        &["dataset", "BS", "VQ", "VQT", "MT", "ADP"],
    );
    let bss: &[usize] = if ctx.scale == Scale::Test { &[4] } else { &[10, 50, 100] };
    for kind in DatasetKind::MD {
        let d = ctx.dataset(kind).clone();
        for &bs in bss {
            let mut cells = vec![kind.name().to_string(), bs.to_string()];
            for method in [Method::Vq, Method::Vqt, Method::Mt, Method::Adaptive] {
                let mut codec = mdz_codec(method);
                let (m, _) = run_dataset(&mut codec, &d, 1e-3, bs, false);
                cells.push(fmt(m.ratio()));
            }
            t.row(cells);
        }
    }
    vec![ctx.emit("fig11", t)]
}
