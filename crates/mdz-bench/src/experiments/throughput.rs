//! Throughput sweep over the parallel block engine.
//!
//! Not a paper artifact: the paper reports single-threaded throughput only
//! (Fig. 13). This experiment seeds the repository's performance
//! trajectory — it sweeps worker counts over the ADP/VQ/VQT/MT codecs on
//! the default dataset, measuring compression and decompression MB/s and
//! the speedup against the serial path, and writes the machine-readable
//! `BENCH_throughput.json` consumed by `scripts/verify.sh` and
//! EXPERIMENTS.md.

use super::Ctx;
use crate::harness::{repeat_timed, TimingSummary};
use crate::json::Json;
use crate::table::{fmt, Table};
use mdz_core::{
    kernel, Compressor, Decompressor, ErrorBound, Frame, MdzConfig, Method, Obs, ParallelOptions,
    ParallelTrajectoryCompressor, ParallelTrajectoryDecompressor,
};
use mdz_obs::Registry;
use mdz_sim::{DatasetKind, Scale};
use std::sync::Arc;
use std::time::Instant;

/// The codecs the sweep covers, in report order.
const CODECS: &[(&str, Method)] =
    &[("ADP", Method::Adaptive), ("VQ", Method::Vq), ("VQT", Method::Vqt), ("MT", Method::Mt)];

struct Entry {
    codec: &'static str,
    workers: usize,
    compress: TimingSummary,
    decompress: TimingSummary,
    ratio: f64,
    compress_speedup: f64,
    decompress_speedup: f64,
}

/// The single-core pipeline stages the SIMD kernels land in, paired with
/// the span metric each stage records. The decode entropy stage (batched
/// Huffman) is timed inside `decode.reconstruct`.
const SIMD_STAGES: &[(&str, &str)] = &[
    ("encode.predict_quantize", "core.encode.predict_quantize_seconds"),
    ("encode.entropy", "core.encode.entropy_seconds"),
    ("encode.lossless", "core.encode.lossless_seconds"),
    ("decode.lossless", "core.decode.lossless_seconds"),
    ("decode.reconstruct", "core.decode.reconstruct_seconds"),
];

/// One kernel arm of the scalar-vs-SIMD breakdown.
struct SimdArm {
    /// Accumulated per-stage span seconds, in [`SIMD_STAGES`] order.
    seconds: Vec<f64>,
    /// Concatenated block bytes from the first repetition.
    bytes: Vec<u8>,
    /// FNV-1a hash over the reconstruction bit patterns.
    decoded_hash: u64,
}

/// One per-stage row of the breakdown table / JSON.
struct StageRow {
    stage: &'static str,
    scalar_seconds: f64,
    simd_seconds: f64,
}

impl StageRow {
    fn speedup(&self) -> f64 {
        if self.simd_seconds > 0.0 {
            self.scalar_seconds / self.simd_seconds
        } else {
            1.0
        }
    }
}

/// Compresses and decodes the stream once per repetition on the plain
/// single-core pipeline with the force-scalar override set to `force`,
/// collecting per-stage span sums from a private registry.
fn run_simd_arm(force: bool, cfg: &MdzConfig, buffers: &[Vec<Vec<f64>>], reps: usize) -> SimdArm {
    let prev = kernel::force_scalar();
    kernel::set_force_scalar(force);
    let registry = Arc::new(Registry::new());
    let obs = Obs::new(registry.clone());
    let mut bytes = Vec::new();
    let mut decoded_hash = 0u64;
    for rep in 0..reps {
        let mut comp = Compressor::new(cfg.clone());
        comp.set_obs(obs.clone());
        let blocks: Vec<Vec<u8>> =
            buffers.iter().map(|buf| comp.compress_buffer(buf).expect("compress")).collect();
        let mut dec = Decompressor::new();
        dec.set_obs(obs.clone());
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for block in &blocks {
            for snap in dec.decompress_block(block).expect("decompress") {
                for v in snap {
                    hash = (hash ^ v.to_bits()).wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        if rep == 0 {
            bytes = blocks.concat();
            decoded_hash = hash;
        }
    }
    kernel::set_force_scalar(prev);
    let snap = registry.snapshot();
    let seconds = SIMD_STAGES
        .iter()
        .map(|&(_, metric)| snap.histogram(metric).map_or(0.0, |h| h.sum))
        .collect();
    SimdArm { seconds, bytes, decoded_hash }
}

/// Runs the scalar oracle and the auto-dispatched kernels over the same
/// stream, asserting byte-identical blocks and bit-identical decodes
/// before reporting per-stage timings.
fn simd_breakdown(buffers: &[Vec<Vec<f64>>], reps: usize) -> Vec<StageRow> {
    let cfg = MdzConfig::new(ErrorBound::ValueRangeRelative(1e-3)).with_method(Method::Adaptive);
    let auto = run_simd_arm(false, &cfg, buffers, reps);
    let scalar = run_simd_arm(true, &cfg, buffers, reps);
    assert_eq!(auto.bytes, scalar.bytes, "SIMD encode diverged from the scalar oracle");
    assert_eq!(
        auto.decoded_hash, scalar.decoded_hash,
        "SIMD decode diverged from the scalar oracle"
    );
    SIMD_STAGES
        .iter()
        .enumerate()
        .map(|(i, &(stage, _))| StageRow {
            stage,
            scalar_seconds: scalar.seconds[i],
            simd_seconds: auto.seconds[i],
        })
        .collect()
}

/// Workers × codecs throughput sweep; writes `BENCH_throughput.json`
/// alongside the usual CSV.
pub fn throughput(ctx: &mut Ctx) -> Vec<Table> {
    let kind = DatasetKind::CopperB;
    let reps = ctx.reps.max(1);
    let mut workers = ctx.workers.clone();
    if !workers.contains(&1) {
        // Speedups are reported against the measured serial path.
        workers.insert(0, 1);
    }

    let hw_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let dataset = ctx.dataset(kind);
    let frames: Vec<Frame> = dataset
        .snapshots
        .iter()
        .map(|s| Frame::new(s.x.clone(), s.y.clone(), s.z.clone()))
        .collect();
    let raw_bytes = dataset.len() * dataset.atoms() * 3 * 8;
    // One axis of the same stream, for the single-core scalar-vs-SIMD
    // breakdown.
    let xs: Vec<Vec<f64>> = dataset.snapshots.iter().map(|s| s.x.clone()).collect();
    // Enough buffers per axis for real fan-out at every scale.
    let bs = if matches!(ctx.scale, Scale::Test) { 3 } else { 10 };
    let axis_buffers: Vec<Vec<Vec<f64>>> = xs.chunks(bs).map(<[Vec<f64>]>::to_vec).collect();
    let buffers: Vec<&[Frame]> = frames.chunks(bs).collect();

    let mut entries: Vec<Entry> = Vec::new();
    for &(name, method) in CODECS {
        let cfg = MdzConfig::new(ErrorBound::ValueRangeRelative(1e-3)).with_method(method);
        // One reference pass for the compressed size (bytes are identical
        // for every worker count) and the decode input.
        let containers = ParallelTrajectoryCompressor::new(cfg.clone())
            .compress_buffers(&buffers)
            .expect("compress");
        let compressed: usize = containers.iter().map(Vec::len).sum();
        let container_refs: Vec<&[u8]> = containers.iter().map(Vec::as_slice).collect();

        let mut serial: Option<(f64, f64)> = None;
        for &w in &workers {
            let par = ParallelOptions::with_workers(w);
            let compress = repeat_timed(reps, || {
                // Fresh stream state per repetition, outside the clock.
                let mut comp = ParallelTrajectoryCompressor::new(cfg.clone()).with_parallelism(par);
                let t0 = Instant::now();
                let out = comp.compress_buffers(&buffers).expect("compress");
                let dt = t0.elapsed().as_secs_f64();
                assert_eq!(out.iter().map(Vec::len).sum::<usize>(), compressed);
                dt
            });
            let decompress = repeat_timed(reps, || {
                let mut dec = ParallelTrajectoryDecompressor::new().with_parallelism(par);
                let t0 = Instant::now();
                let out = dec.decompress_buffers(&container_refs).expect("decompress");
                let dt = t0.elapsed().as_secs_f64();
                assert_eq!(out.len(), buffers.len());
                dt
            });
            let (c_base, d_base) =
                *serial.get_or_insert((compress.mbps(raw_bytes), decompress.mbps(raw_bytes)));
            entries.push(Entry {
                codec: name,
                workers: w,
                compress,
                decompress,
                ratio: raw_bytes as f64 / compressed.max(1) as f64,
                compress_speedup: compress.mbps(raw_bytes) / c_base.max(1e-12),
                decompress_speedup: decompress.mbps(raw_bytes) / d_base.max(1e-12),
            });
        }
    }

    let stage_rows = simd_breakdown(&axis_buffers, reps);
    write_json(ctx, kind, raw_bytes, bs, reps, hw_threads, &entries, &stage_rows);

    let mut table = Table::new(
        &format!(
            "Throughput sweep ({}, {} reps, min-of-reps, {} hw thread{})",
            kind.name(),
            reps,
            hw_threads,
            if hw_threads == 1 { "" } else { "s" }
        ),
        &[
            "codec",
            "workers",
            "comp MB/s",
            "comp speedup",
            "dec MB/s",
            "dec speedup",
            "CR",
            "comp s (min)",
            "comp s (median)",
        ],
    );
    for e in &entries {
        table.row(vec![
            e.codec.into(),
            e.workers.to_string(),
            fmt(e.compress.mbps(raw_bytes)),
            fmt(e.compress_speedup),
            fmt(e.decompress.mbps(raw_bytes)),
            fmt(e.decompress_speedup),
            fmt(e.ratio),
            fmt(e.compress.min),
            fmt(e.compress.median),
        ]);
    }

    let backend = kernel::detected_level().name();
    let mut simd_table = Table::new(
        &format!(
            "Single-core per-stage breakdown (scalar oracle vs {backend} kernels, ADP, {reps} reps)"
        ),
        &["stage", "scalar s", "simd s", "speedup"],
    );
    for r in &stage_rows {
        simd_table.row(vec![
            r.stage.into(),
            fmt(r.scalar_seconds),
            fmt(r.simd_seconds),
            fmt(r.speedup()),
        ]);
    }
    vec![ctx.emit("throughput", table), ctx.emit("throughput_simd", simd_table)]
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    ctx: &Ctx,
    kind: DatasetKind,
    raw_bytes: usize,
    bs: usize,
    reps: usize,
    hw_threads: usize,
    entries: &[Entry],
    stage_rows: &[StageRow],
) {
    let timing = |t: &TimingSummary| {
        Json::obj(vec![
            ("min_seconds", Json::Num(t.min)),
            ("median_seconds", Json::Num(t.median)),
            ("mean_seconds", Json::Num(t.mean)),
        ])
    };
    let doc = Json::obj(vec![
        ("experiment", Json::Str("throughput".into())),
        ("scale", Json::Str(format!("{:?}", ctx.scale).to_lowercase())),
        ("dataset", Json::Str(kind.name().into())),
        ("raw_bytes", Json::Num(raw_bytes as f64)),
        ("buffer_snapshots", Json::Num(bs as f64)),
        ("reps", Json::Num(reps as f64)),
        // Wall-clock speedup is bounded by the machine: on a single-core
        // runner, workers > 1 can only measure engine overhead.
        ("hardware_threads", Json::Num(hw_threads as f64)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("codec", Json::Str(e.codec.into())),
                            ("workers", Json::Num(e.workers as f64)),
                            ("compress_mbps", Json::Num(e.compress.mbps(raw_bytes))),
                            ("decompress_mbps", Json::Num(e.decompress.mbps(raw_bytes))),
                            ("ratio", Json::Num(e.ratio)),
                            ("compress_speedup", Json::Num(e.compress_speedup)),
                            ("decompress_speedup", Json::Num(e.decompress_speedup)),
                            ("compress_timing", timing(&e.compress)),
                            ("decompress_timing", timing(&e.decompress)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("simd", simd_json(stage_rows)),
    ]);
    let path = ctx.out_dir.join("BENCH_throughput.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, doc.render()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// The `simd` object of `BENCH_throughput.json`: the detected backend, the
/// per-stage scalar-vs-SIMD seconds, and a caveat when the host exposes no
/// vector features (both arms then ran the scalar kernels and the speedups
/// only measure noise).
fn simd_json(stage_rows: &[StageRow]) -> Json {
    let backend = kernel::detected_level().name();
    let mut fields = vec![
        ("backend", Json::Str(backend.into())),
        ("force_scalar_override", Json::Str("MDZ_FORCE_SCALAR".into())),
    ];
    if backend == "scalar" {
        fields.push((
            "caveat",
            Json::Str(
                "host CPU exposes no supported vector features; both arms ran the scalar kernels"
                    .into(),
            ),
        ));
    }
    fields.push((
        "stages",
        Json::Arr(
            stage_rows
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("stage", Json::Str(r.stage.into())),
                        ("scalar_seconds", Json::Num(r.scalar_seconds)),
                        ("simd_seconds", Json::Num(r.simd_seconds)),
                        ("speedup", Json::Num(r.speedup())),
                    ])
                })
                .collect(),
        ),
    ));
    Json::obj(fields)
}
