//! Throughput sweep over the parallel block engine.
//!
//! Not a paper artifact: the paper reports single-threaded throughput only
//! (Fig. 13). This experiment seeds the repository's performance
//! trajectory — it sweeps worker counts over the ADP/VQ/VQT/MT codecs on
//! the default dataset, measuring compression and decompression MB/s and
//! the speedup against the serial path, and writes the machine-readable
//! `BENCH_throughput.json` consumed by `scripts/verify.sh` and
//! EXPERIMENTS.md.

use super::Ctx;
use crate::harness::{repeat_timed, TimingSummary};
use crate::json::Json;
use crate::table::{fmt, Table};
use mdz_core::{
    ErrorBound, Frame, MdzConfig, Method, ParallelOptions, ParallelTrajectoryCompressor,
    ParallelTrajectoryDecompressor,
};
use mdz_sim::{DatasetKind, Scale};
use std::time::Instant;

/// The codecs the sweep covers, in report order.
const CODECS: &[(&str, Method)] =
    &[("ADP", Method::Adaptive), ("VQ", Method::Vq), ("VQT", Method::Vqt), ("MT", Method::Mt)];

struct Entry {
    codec: &'static str,
    workers: usize,
    compress: TimingSummary,
    decompress: TimingSummary,
    ratio: f64,
    compress_speedup: f64,
    decompress_speedup: f64,
}

/// Workers × codecs throughput sweep; writes `BENCH_throughput.json`
/// alongside the usual CSV.
pub fn throughput(ctx: &mut Ctx) -> Vec<Table> {
    let kind = DatasetKind::CopperB;
    let reps = ctx.reps.max(1);
    let mut workers = ctx.workers.clone();
    if !workers.contains(&1) {
        // Speedups are reported against the measured serial path.
        workers.insert(0, 1);
    }

    let hw_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let dataset = ctx.dataset(kind);
    let frames: Vec<Frame> = dataset
        .snapshots
        .iter()
        .map(|s| Frame::new(s.x.clone(), s.y.clone(), s.z.clone()))
        .collect();
    let raw_bytes = dataset.len() * dataset.atoms() * 3 * 8;
    // Enough buffers per axis for real fan-out at every scale.
    let bs = if matches!(ctx.scale, Scale::Test) { 3 } else { 10 };
    let buffers: Vec<&[Frame]> = frames.chunks(bs).collect();

    let mut entries: Vec<Entry> = Vec::new();
    for &(name, method) in CODECS {
        let cfg = MdzConfig::new(ErrorBound::ValueRangeRelative(1e-3)).with_method(method);
        // One reference pass for the compressed size (bytes are identical
        // for every worker count) and the decode input.
        let containers = ParallelTrajectoryCompressor::new(cfg.clone())
            .compress_buffers(&buffers)
            .expect("compress");
        let compressed: usize = containers.iter().map(Vec::len).sum();
        let container_refs: Vec<&[u8]> = containers.iter().map(Vec::as_slice).collect();

        let mut serial: Option<(f64, f64)> = None;
        for &w in &workers {
            let par = ParallelOptions::with_workers(w);
            let compress = repeat_timed(reps, || {
                // Fresh stream state per repetition, outside the clock.
                let mut comp = ParallelTrajectoryCompressor::new(cfg.clone()).with_parallelism(par);
                let t0 = Instant::now();
                let out = comp.compress_buffers(&buffers).expect("compress");
                let dt = t0.elapsed().as_secs_f64();
                assert_eq!(out.iter().map(Vec::len).sum::<usize>(), compressed);
                dt
            });
            let decompress = repeat_timed(reps, || {
                let mut dec = ParallelTrajectoryDecompressor::new().with_parallelism(par);
                let t0 = Instant::now();
                let out = dec.decompress_buffers(&container_refs).expect("decompress");
                let dt = t0.elapsed().as_secs_f64();
                assert_eq!(out.len(), buffers.len());
                dt
            });
            let (c_base, d_base) =
                *serial.get_or_insert((compress.mbps(raw_bytes), decompress.mbps(raw_bytes)));
            entries.push(Entry {
                codec: name,
                workers: w,
                compress,
                decompress,
                ratio: raw_bytes as f64 / compressed.max(1) as f64,
                compress_speedup: compress.mbps(raw_bytes) / c_base.max(1e-12),
                decompress_speedup: decompress.mbps(raw_bytes) / d_base.max(1e-12),
            });
        }
    }

    write_json(ctx, kind, raw_bytes, bs, reps, hw_threads, &entries);

    let mut table = Table::new(
        &format!(
            "Throughput sweep ({}, {} reps, min-of-reps, {} hw thread{})",
            kind.name(),
            reps,
            hw_threads,
            if hw_threads == 1 { "" } else { "s" }
        ),
        &[
            "codec",
            "workers",
            "comp MB/s",
            "comp speedup",
            "dec MB/s",
            "dec speedup",
            "CR",
            "comp s (min)",
            "comp s (median)",
        ],
    );
    for e in &entries {
        table.row(vec![
            e.codec.into(),
            e.workers.to_string(),
            fmt(e.compress.mbps(raw_bytes)),
            fmt(e.compress_speedup),
            fmt(e.decompress.mbps(raw_bytes)),
            fmt(e.decompress_speedup),
            fmt(e.ratio),
            fmt(e.compress.min),
            fmt(e.compress.median),
        ]);
    }
    vec![ctx.emit("throughput", table)]
}

fn write_json(
    ctx: &Ctx,
    kind: DatasetKind,
    raw_bytes: usize,
    bs: usize,
    reps: usize,
    hw_threads: usize,
    entries: &[Entry],
) {
    let timing = |t: &TimingSummary| {
        Json::obj(vec![
            ("min_seconds", Json::Num(t.min)),
            ("median_seconds", Json::Num(t.median)),
            ("mean_seconds", Json::Num(t.mean)),
        ])
    };
    let doc = Json::obj(vec![
        ("experiment", Json::Str("throughput".into())),
        ("scale", Json::Str(format!("{:?}", ctx.scale).to_lowercase())),
        ("dataset", Json::Str(kind.name().into())),
        ("raw_bytes", Json::Num(raw_bytes as f64)),
        ("buffer_snapshots", Json::Num(bs as f64)),
        ("reps", Json::Num(reps as f64)),
        // Wall-clock speedup is bounded by the machine: on a single-core
        // runner, workers > 1 can only measure engine overhead.
        ("hardware_threads", Json::Num(hw_threads as f64)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("codec", Json::Str(e.codec.into())),
                            ("workers", Json::Num(e.workers as f64)),
                            ("compress_mbps", Json::Num(e.compress.mbps(raw_bytes))),
                            ("decompress_mbps", Json::Num(e.decompress.mbps(raw_bytes))),
                            ("ratio", Json::Num(e.ratio)),
                            ("compress_speedup", Json::Num(e.compress_speedup)),
                            ("decompress_speedup", Json::Num(e.decompress_speedup)),
                            ("compress_timing", timing(&e.compress)),
                            ("decompress_timing", timing(&e.decompress)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = ctx.out_dir.join("BENCH_throughput.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, doc.render()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
