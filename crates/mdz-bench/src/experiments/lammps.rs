//! Table VII: inline-compression overhead in a real MD run.
//!
//! The paper integrates MDZ into LAMMPS and shows the dump/compress path
//! adds negligible overhead to the Lennard-Jones benchmark — and even
//! *improves* output time at high dump frequency because far fewer bytes
//! reach the file system. We reproduce the experiment with this workspace's
//! own LJ engine: run the simulation, dump positions every `F` steps to an
//! actual file (fsync'd, so I/O cost is real), with and without MDZ
//! compressing the dumped frames.

use super::Ctx;
use crate::table::{fmt, Table};
use mdz_core::{Compressor, ErrorBound, MdzConfig};
use mdz_sim::{LjSimulation, Scale, SimConfig};
use std::io::Write as _;
use std::time::Instant;

/// One configuration's measured breakdown.
struct Breakdown {
    duration: f64,
    compute_frac: f64,
    output_frac: f64,
    output_bytes: usize,
}

fn run_case(
    n_atoms: usize,
    steps: usize,
    dump_every: usize,
    with_mdz: bool,
    seed: u64,
    dump_path: &std::path::Path,
) -> Breakdown {
    let mut sim = LjSimulation::new(SimConfig { n_target: n_atoms, seed, ..Default::default() });
    let bs = 10;
    let mut compressors: Option<[Compressor; 3]> = with_mdz.then(|| {
        let mk = || Compressor::new(MdzConfig::new(ErrorBound::ValueRangeRelative(1e-3)));
        [mk(), mk(), mk()]
    });
    let mut file = std::fs::File::create(dump_path).expect("create dump file");
    let mut pending: Vec<mdz_sim::Snapshot> = Vec::new();
    let mut compute = 0.0f64;
    let mut output = 0.0f64;
    let mut output_bytes = 0usize;
    let t_total = Instant::now();
    for step in 0..steps {
        let t0 = Instant::now();
        sim.step();
        compute += t0.elapsed().as_secs_f64();
        if step % dump_every == 0 {
            let t1 = Instant::now();
            pending.push(sim.snapshot());
            if pending.len() >= bs {
                output_bytes += flush(&mut pending, &mut compressors, &mut file);
            }
            output += t1.elapsed().as_secs_f64();
        }
    }
    let t1 = Instant::now();
    if !pending.is_empty() {
        output_bytes += flush(&mut pending, &mut compressors, &mut file);
    }
    let _ = file.sync_data();
    output += t1.elapsed().as_secs_f64();
    let duration = t_total.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(dump_path);
    Breakdown {
        duration,
        compute_frac: compute / duration,
        output_frac: output / duration,
        output_bytes,
    }
}

/// Serializes (and optionally compresses) pending frames to the dump file,
/// fsync'ing so the write cost is not deferred to the page cache.
fn flush(
    pending: &mut Vec<mdz_sim::Snapshot>,
    comps: &mut Option<[Compressor; 3]>,
    file: &mut std::fs::File,
) -> usize {
    let mut written = 0usize;
    match comps {
        Some(cs) => {
            for (axis, c) in cs.iter_mut().enumerate() {
                let series: Vec<Vec<f64>> = pending.iter().map(|s| s.axis(axis).to_vec()).collect();
                let blob = c.compress_buffer(&series).expect("compress");
                file.write_all(&blob).expect("write");
                written += blob.len();
            }
        }
        None => {
            // Raw dump: plain little-endian binary writer.
            let mut buf = Vec::with_capacity(pending.len() * pending[0].len() * 24);
            for s in pending.iter() {
                for axis in 0..3 {
                    for &v in s.axis(axis) {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            file.write_all(&buf).expect("write");
            written = buf.len();
        }
    }
    let _ = file.sync_data();
    pending.clear();
    written
}

/// Table VII: runtime breakdown of the LJ benchmark with/without MDZ.
pub fn table7(ctx: &mut Ctx) -> Vec<Table> {
    let mut t = Table::new(
        "Table VII — LJ run breakdown with/without inline MDZ",
        &["F", "atoms", "option", "duration s", "compute %", "output %", "output MB"],
    );
    let (sizes, steps): (&[usize], usize) = match ctx.scale {
        Scale::Test => (&[200], 120),
        Scale::Small => (&[500, 2000], 2000),
        Scale::Full => (&[500, 2000, 8000], 5000),
    };
    std::fs::create_dir_all(&ctx.out_dir).ok();
    let dump_path = ctx.out_dir.join("lj_dump.bin");
    for &dump_every in &[20usize, 250] {
        for &n in sizes {
            for with_mdz in [false, true] {
                let b = run_case(n, steps, dump_every, with_mdz, ctx.seed, &dump_path);
                t.row(vec![
                    dump_every.to_string(),
                    n.to_string(),
                    if with_mdz { "w MDZ" } else { "w/o MDZ" }.into(),
                    fmt(b.duration),
                    fmt(b.compute_frac * 100.0),
                    fmt(b.output_frac * 100.0),
                    fmt(b.output_bytes as f64 / 1e6),
                ]);
            }
        }
    }
    vec![ctx.emit("table7", t)]
}
