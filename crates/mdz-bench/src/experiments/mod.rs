//! One function per paper artifact (tables I–VII, figures 3–16).
//!
//! Every experiment returns [`Table`]s; the `experiments` binary renders
//! them to stdout and writes CSV files under `results/`. Dataset generation
//! is cached per run so multi-figure invocations don't regenerate.

mod ablations;
mod characterization;
mod comparison;
mod core_exps;
mod ingest;
mod lammps;
mod latency;
mod quantizer;
mod serve;
mod throughput;

pub use ablations::ablations;
pub use characterization::{fig3, fig4, fig5, fig8, table1, table2};
pub use comparison::{fig12, fig12var, fig13, fig14, fig15, fig16, table4, table5, table6};
pub use core_exps::{fig10, fig11, fig9, table3};
pub use ingest::ingest;
pub use lammps::table7;
pub use latency::latency;
pub use quantizer::quantizer;
pub use serve::serve;
pub use throughput::throughput;

use crate::table::Table;
use mdz_sim::{datasets, Dataset, DatasetKind, Scale};
use std::collections::HashMap;
use std::path::PathBuf;

/// Shared experiment context: scale, output directory, dataset cache.
pub struct Ctx {
    pub scale: Scale,
    pub out_dir: PathBuf,
    pub seed: u64,
    /// Worker counts the throughput experiment sweeps (CLI `--workers`).
    pub workers: Vec<usize>,
    /// Timed repetitions per throughput measurement (CLI `--reps`).
    pub reps: usize,
    cache: HashMap<DatasetKind, Dataset>,
}

impl Ctx {
    /// Creates a context writing CSVs under `out_dir`.
    pub fn new(scale: Scale, out_dir: PathBuf, seed: u64) -> Self {
        Self { scale, out_dir, seed, workers: vec![1, 2, 4, 8], reps: 3, cache: HashMap::new() }
    }

    /// Overrides the worker sweep used by the throughput experiment.
    pub fn with_workers(mut self, workers: Vec<usize>) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the timed repetitions per throughput measurement.
    pub fn with_reps(mut self, reps: usize) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// Returns the (cached) dataset of `kind` at the context scale.
    pub fn dataset(&mut self, kind: DatasetKind) -> &Dataset {
        let scale = self.scale;
        let seed = self.seed;
        self.cache.entry(kind).or_insert_with(|| datasets::generate(kind, scale, seed))
    }

    /// Writes a table's CSV under the output directory (file name derived
    /// from the experiment id) and returns the table unchanged.
    pub fn emit(&self, id: &str, table: Table) -> Table {
        let path = self.out_dir.join(format!("{id}.csv"));
        if let Err(e) = table.write_csv(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        table
    }
}

/// Every experiment id, in paper order.
pub const ALL: &[&str] = &[
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig8",
    "table2",
    "fig9",
    "table3",
    "fig10",
    "fig11",
    "fig12",
    "fig12var",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "table4",
    "table5",
    "table6",
    "table7",
    "ablations",
    "throughput",
    "latency",
    "quantizer",
    "ingest",
    "serve",
];

/// Runs one experiment by id.
pub fn run(id: &str, ctx: &mut Ctx) -> Option<Vec<Table>> {
    let tables = match id {
        "table1" => table1(ctx),
        "fig3" => fig3(ctx),
        "fig4" => fig4(ctx),
        "fig5" => fig5(ctx),
        "fig8" => fig8(ctx),
        "table2" => table2(ctx),
        "fig9" => fig9(ctx),
        "table3" => table3(ctx),
        "fig10" => fig10(ctx),
        "fig11" => fig11(ctx),
        "fig12" => fig12(ctx),
        "fig12var" => fig12var(ctx),
        "fig13" => fig13(ctx),
        "fig14" => fig14(ctx),
        "fig15" => fig15(ctx),
        "fig16" => fig16(ctx),
        "table4" => table4(ctx),
        "table5" => table5(ctx),
        "table6" => table6(ctx),
        "table7" => table7(ctx),
        "ablations" => ablations(ctx),
        "throughput" => throughput(ctx),
        "latency" => latency(ctx),
        "quantizer" => quantizer(ctx),
        "ingest" => ingest(ctx),
        "serve" => serve(ctx),
        _ => return None,
    };
    Some(tables)
}
