//! Quantizer-stage ratio comparison: fixed-scale linear vs bit-adaptive.
//!
//! Runs the adaptive pipeline twice at the same absolute bound — once with
//! the paper's fixed-radius linear quantizer only, once with bit-adaptive
//! per-chunk candidates enabled — over a crystal corpus (where the fixed
//! scale is well matched) and the non-crystal `Gas` corpus (where per-atom
//! step magnitudes span decades and the fixed scale forces escapes). The
//! error bound is re-verified for every value on both sides; the
//! machine-readable `BENCH_quantizer.json` is schema-checked by
//! `tests/quantizer_json.rs` and `scripts/verify.sh`.

use super::Ctx;
use crate::json::Json;
use crate::table::{fmt, Table};
use mdz_core::{Codec, Decompressor, ErrorBound, MdzCodec, MdzConfig};
use mdz_sim::{Dataset, DatasetKind, Scale};

/// Absolute bound both compositions run under. Chosen so the `Gas`
/// corpus's fastest atoms overflow the fixed 512-code radius (forcing
/// 9-byte escapes) while the bit-adaptive stage still covers them with
/// wide per-chunk codes.
const EPS: f64 = 1e-3;

struct Entry {
    dataset: &'static str,
    codec: &'static str,
    raw_bytes: usize,
    compressed_bytes: usize,
    max_abs_err: f64,
    bound_ok: bool,
    blocks: usize,
    ba_blocks: usize,
}

impl Entry {
    fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.compressed_bytes.max(1) as f64
    }
}

/// Runs `codec` over all three axes of `dataset` in buffers of `bs`
/// snapshots at the fixed absolute bound, verifying the bound per value
/// and counting how many emitted blocks used the bit-adaptive stage.
fn run(codec: &mut MdzCodec, dataset: &Dataset, bs: usize) -> Entry {
    let m = dataset.len();
    let n = dataset.atoms();
    let mut entry = Entry {
        dataset: dataset.kind.name(),
        codec: codec.name(),
        raw_bytes: 3 * m * n * 8,
        compressed_bytes: 0,
        max_abs_err: 0.0,
        bound_ok: true,
        blocks: 0,
        ba_blocks: 0,
    };
    for axis in 0..3 {
        codec.reset();
        let series = dataset.axis_series(axis);
        let mut start = 0;
        while start < m {
            let end = (start + bs).min(m);
            let buf = &series[start..end];
            let blob = codec.compress_buffer(buf, ErrorBound::Absolute(EPS)).expect("compress");
            entry.compressed_bytes += blob.len();
            entry.blocks += 1;
            if Decompressor::inspect(&blob).expect("inspect").bit_adaptive {
                entry.ba_blocks += 1;
            }
            let out = codec.decompress_buffer(&blob).expect("round trip");
            for (orig, got) in buf.iter().zip(out.iter()) {
                for (&a, &b) in orig.iter().zip(got.iter()) {
                    if !a.is_finite() {
                        continue;
                    }
                    let e = (a - b).abs();
                    entry.max_abs_err = entry.max_abs_err.max(e);
                    if e > EPS * (1.0 + 1e-9) {
                        entry.bound_ok = false;
                    }
                }
            }
            start = end;
        }
    }
    entry
}

/// Linear-only vs bit-adaptive-candidate adaptive compression on crystal
/// and gas corpora; writes `BENCH_quantizer.json` alongside the usual CSV.
pub fn quantizer(ctx: &mut Ctx) -> Vec<Table> {
    let bs = if matches!(ctx.scale, Scale::Test) { 2 } else { 10 };
    let kinds = [DatasetKind::CopperB, DatasetKind::Gas];
    let mut entries: Vec<Entry> = Vec::new();
    for kind in kinds {
        let dataset = ctx.dataset(kind).clone();
        let base = MdzConfig::new(ErrorBound::Absolute(EPS));
        let mut linear = MdzCodec::from_config(base.clone());
        let mut bit_adaptive = MdzCodec::from_config(base.with_bit_adaptive_candidates(true));
        entries.push(run(&mut linear, &dataset, bs));
        entries.push(run(&mut bit_adaptive, &dataset, bs));
    }

    write_json(ctx, bs, &entries);

    let mut table = Table::new(
        &format!("Quantizer stage comparison (absolute bound {EPS}, buffer = {bs} snapshots)"),
        &[
            "dataset",
            "codec",
            "raw bytes",
            "compressed bytes",
            "ratio",
            "max abs err",
            "bound ok",
            "BA blocks",
            "blocks",
        ],
    );
    for e in &entries {
        table.row(vec![
            e.dataset.to_string(),
            e.codec.to_string(),
            e.raw_bytes.to_string(),
            e.compressed_bytes.to_string(),
            fmt(e.ratio()),
            fmt(e.max_abs_err),
            e.bound_ok.to_string(),
            e.ba_blocks.to_string(),
            e.blocks.to_string(),
        ]);
    }
    vec![ctx.emit("quantizer", table)]
}

fn write_json(ctx: &Ctx, bs: usize, entries: &[Entry]) {
    let doc = Json::obj(vec![
        ("experiment", Json::Str("quantizer".into())),
        ("scale", Json::Str(format!("{:?}", ctx.scale).to_lowercase())),
        ("bound_abs", Json::Num(EPS)),
        ("buffer_snapshots", Json::Num(bs as f64)),
        (
            "entries",
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("dataset", Json::Str(e.dataset.into())),
                            ("codec", Json::Str(e.codec.into())),
                            ("raw_bytes", Json::Num(e.raw_bytes as f64)),
                            ("compressed_bytes", Json::Num(e.compressed_bytes as f64)),
                            ("ratio", Json::Num(e.ratio())),
                            ("max_abs_err", Json::Num(e.max_abs_err)),
                            ("bound_ok", Json::Bool(e.bound_ok)),
                            ("bit_adaptive_blocks", Json::Num(e.ba_blocks as f64)),
                            ("blocks", Json::Num(e.blocks as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = ctx.out_dir.join("BENCH_quantizer.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, doc.render()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}
