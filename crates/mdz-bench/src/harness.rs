//! Uniform codec harness over MDZ and the baselines.
//!
//! Every compressor under test — MDZ included — is a [`Codec`], so the
//! harness holds `Box<dyn Codec>` values and never special-cases MDZ.

use mdz_baselines::{
    asn::Asn, hrtc::Hrtc, lfzip::Lfzip, mdb::Mdb, sz2::Sz2, sz2::Sz2Mode, sz3::Sz3, tng::Tng,
};
use mdz_core::{Codec, ErrorBound, MdzCodec, MdzConfig, Method};
use mdz_sim::Dataset;
use std::time::Instant;

/// An MDZ codec for a specific method (with the paper's defaults).
pub fn mdz_codec(method: Method) -> MdzCodec {
    mdz_codec_with(method, 512, true)
}

/// An MDZ codec with explicit radius / sequence settings (Figs. 9, Table III).
///
/// The bound in the template configuration is a placeholder — the harness
/// passes the resolved per-axis bound on every [`Codec::compress_buffer`]
/// call.
pub fn mdz_codec_with(method: Method, radius: u32, seq2: bool) -> MdzCodec {
    let name = match method {
        Method::Vq => "VQ",
        Method::Vqt => "VQT",
        Method::Mt => "MT",
        Method::Mt2 => "MT2",
        Method::Adaptive => "MDZ",
    };
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3))
        .with_method(method)
        .with_radius(radius)
        .with_seq2(seq2);
    MdzCodec::with_name(name, cfg)
}

/// MDZ with the extended (MT2-including) adaptive candidate set.
pub fn mdz_extended_codec() -> MdzCodec {
    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_extended_candidates(true);
    MdzCodec::with_name("MDZ+", cfg)
}

/// The evaluation's standard line-up: MDZ (ADP) plus the six baselines.
pub fn standard_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(mdz_codec(Method::Adaptive)),
        Box::new(Sz2::new(Sz2Mode::TwoD)),
        Box::new(Asn::new()),
        Box::new(Tng::new()),
        Box::new(Hrtc::new()),
        Box::new(Mdb::new()),
        Box::new(Lfzip::new()),
        Box::new(Sz3::new()),
    ]
}

/// SZ2 in 1-D mode (Table IV).
pub fn sz2_1d_codec() -> Sz2 {
    Sz2::new(Sz2Mode::OneD)
}

/// Measured outcome of one dataset run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunMetrics {
    pub raw_bytes: usize,
    pub compressed_bytes: usize,
    pub compress_seconds: f64,
    pub decompress_seconds: f64,
    pub max_error: f64,
    pub nrmse: f64,
    pub psnr: f64,
}

impl RunMetrics {
    /// Raw over compressed size.
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.compressed_bytes.max(1) as f64
    }

    /// Compression throughput over raw bytes, MB/s.
    pub fn compress_mbps(&self) -> f64 {
        self.raw_bytes as f64 / 1e6 / self.compress_seconds.max(1e-12)
    }

    /// Decompression throughput over raw bytes, MB/s.
    pub fn decompress_mbps(&self) -> f64 {
        self.raw_bytes as f64 / 1e6 / self.decompress_seconds.max(1e-12)
    }

    /// Compressed bits per value.
    pub fn bit_rate(&self) -> f64 {
        self.compressed_bytes as f64 * 8.0 / (self.raw_bytes as f64 / 8.0)
    }
}

/// Per-repetition timing statistics.
///
/// [`run_dataset`] (and the throughput experiment) time the same work
/// several times; a single accumulated total is skewed by first-repetition
/// page faults, allocator warm-up, and scheduler noise. This summary keeps
/// the distribution: `min` is the steady-state figure throughput should be
/// computed from, `median` is the robust typical-case figure, and `mean`
/// is what naive accumulation used to report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingSummary {
    /// Fastest repetition, seconds.
    pub min: f64,
    /// Median repetition, seconds (midpoint average for even counts).
    pub median: f64,
    /// Mean over all repetitions, seconds.
    pub mean: f64,
    /// 50th percentile (nearest-rank), seconds. Reported alongside `median`
    /// because latency distributions are quoted as p50/p99 pairs; for odd
    /// sample counts the two coincide.
    pub p50: f64,
    /// 99th percentile (nearest-rank), seconds — the tail-latency figure
    /// the store's request benchmarks report.
    pub p99: f64,
    /// Number of repetitions summarized.
    pub reps: usize,
}

impl TimingSummary {
    /// Summarizes a set of per-repetition timings (empty input → zeros).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]) };
        // Nearest-rank percentile: smallest sample ≥ the requested fraction
        // of the distribution. The tiny subtraction keeps an exact product
        // like 0.99 × 100 = 99 from rounding up through its ceiling.
        let rank = |p: f64| sorted[(((p * n as f64) - 1e-9).ceil() as usize).clamp(1, n) - 1];
        Self {
            min: sorted[0],
            median,
            mean: sorted.iter().sum::<f64>() / n as f64,
            p50: rank(0.50),
            p99: rank(0.99),
            reps: n,
        }
    }

    /// Throughput in MB/s for `raw_bytes` of work, using the steady-state
    /// (minimum) repetition time.
    pub fn mbps(&self, raw_bytes: usize) -> f64 {
        raw_bytes as f64 / 1e6 / self.min.max(1e-12)
    }
}

/// Runs `rep` once per repetition and summarizes the distribution.
///
/// `rep` performs one repetition and returns the seconds it measured for
/// the hot region — setup (rebuilding compressor state so every repetition
/// does identical work) stays outside the measurement by construction.
pub fn repeat_timed(reps: usize, mut rep: impl FnMut() -> f64) -> TimingSummary {
    let samples: Vec<f64> = (0..reps.max(1)).map(|_| rep()).collect();
    TimingSummary::from_samples(&samples)
}

/// Resolves a value-range-relative bound against one axis of a dataset
/// (the SZ convention the paper reports ε under).
pub fn axis_eps(dataset: &Dataset, axis: usize, eps_rel: f64) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for s in &dataset.snapshots {
        for &v in s.axis(axis) {
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
    }
    let range = max - min;
    if range > 0.0 && range.is_finite() {
        eps_rel * range
    } else {
        eps_rel
    }
}

/// Runs `codec` over all three axes of `dataset` in buffers of `bs`
/// snapshots, verifying the bound and accumulating metrics.
///
/// Returns the metrics and (optionally, when `keep` is set) the
/// decompressed snapshots for physics-fidelity analysis.
pub fn run_dataset(
    codec: &mut dyn Codec,
    dataset: &Dataset,
    eps_rel: f64,
    bs: usize,
    keep: bool,
) -> (RunMetrics, Option<Vec<mdz_sim::Snapshot>>) {
    assert!(bs > 0);
    let mut metrics = RunMetrics::default();
    let m = dataset.len();
    let n = dataset.atoms();
    let mut restored: Option<Vec<mdz_sim::Snapshot>> = keep
        .then(|| vec![mdz_sim::Snapshot { x: vec![0.0; n], y: vec![0.0; n], z: vec![0.0; n] }; m]);

    let mut sq_sum = 0.0f64;
    let mut count = 0usize;
    let mut range_min = f64::INFINITY;
    let mut range_max = f64::NEG_INFINITY;

    for axis in 0..3 {
        codec.reset();
        let eps = axis_eps(dataset, axis, eps_rel);
        let series = dataset.axis_series(axis);
        metrics.raw_bytes += m * n * 8;
        let mut start = 0;
        while start < m {
            let end = (start + bs).min(m);
            let buf = &series[start..end];
            let t0 = Instant::now();
            let blob = codec.compress_buffer(buf, ErrorBound::Absolute(eps)).expect("compress");
            metrics.compress_seconds += t0.elapsed().as_secs_f64();
            metrics.compressed_bytes += blob.len();
            let t1 = Instant::now();
            let out = codec.decompress_buffer(&blob).expect("round trip");
            metrics.decompress_seconds += t1.elapsed().as_secs_f64();
            for (t, (orig, got)) in buf.iter().zip(out.iter()).enumerate() {
                for (i, (&a, &b)) in orig.iter().zip(got.iter()).enumerate() {
                    let e = (a - b).abs();
                    assert!(
                        e <= eps * (1.0 + 1e-9) || !a.is_finite(),
                        "{}: bound violated on {} axis {axis}: |{a} - {b}| > {eps}",
                        codec.name(),
                        dataset.kind.name(),
                    );
                    if e > metrics.max_error {
                        metrics.max_error = e;
                    }
                    sq_sum += (a - b) * (a - b);
                    count += 1;
                    if a < range_min {
                        range_min = a;
                    }
                    if a > range_max {
                        range_max = a;
                    }
                    if let Some(rs) = restored.as_mut() {
                        match axis {
                            0 => rs[start + t].x[i] = b,
                            1 => rs[start + t].y[i] = b,
                            _ => rs[start + t].z[i] = b,
                        }
                    }
                }
            }
            start = end;
        }
    }
    let rmse = (sq_sum / count.max(1) as f64).sqrt();
    let range = (range_max - range_min).max(f64::MIN_POSITIVE);
    metrics.nrmse = rmse / range;
    metrics.psnr = if metrics.nrmse > 0.0 { -20.0 * metrics.nrmse.log10() } else { f64::INFINITY };
    (metrics, restored)
}

/// Binary-searches the relative bound that puts `codec` at compression
/// ratio ≈ `target` on `dataset` (used by the paper's CR=10 comparisons).
pub fn eps_for_ratio(codec: &mut dyn Codec, dataset: &Dataset, bs: usize, target: f64) -> f64 {
    let mut lo = 1e-8f64.ln();
    let mut hi = 0.3f64.ln();
    for _ in 0..14 {
        let mid = 0.5 * (lo + hi);
        let (m, _) = run_dataset(codec, dataset, mid.exp(), bs, false);
        if m.ratio() < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (0.5 * (lo + hi)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdz_sim::{datasets, DatasetKind, Scale};

    #[test]
    fn all_codecs_run_a_dataset() {
        let d = datasets::generate(DatasetKind::CopperB, Scale::Test, 1);
        for mut codec in standard_codecs() {
            let (m, _) = run_dataset(&mut codec, &d, 1e-3, 4, false);
            assert!(m.ratio() > 1.0, "{}: ratio {}", codec.name(), m.ratio());
            assert!(m.max_error > 0.0 || m.ratio() > 100.0);
        }
    }

    #[test]
    fn keep_returns_full_reconstruction() {
        let d = datasets::generate(DatasetKind::Adk, Scale::Test, 2);
        let mut codec = mdz_codec(Method::Adaptive);
        let (_, restored) = run_dataset(&mut codec, &d, 1e-3, 4, true);
        let rs = restored.unwrap();
        assert_eq!(rs.len(), d.len());
        assert_eq!(rs[0].len(), d.atoms());
        // Spot-check the bound on y-axis.
        let eps = axis_eps(&d, 1, 1e-3);
        for (o, r) in d.snapshots.iter().zip(rs.iter()) {
            for (&a, &b) in o.y.iter().zip(r.y.iter()) {
                assert!((a - b).abs() <= eps * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn eps_for_ratio_converges() {
        let d = datasets::generate(DatasetKind::CopperB, Scale::Test, 3);
        let mut codec = mdz_codec(Method::Vq);
        let eps = eps_for_ratio(&mut codec, &d, 4, 8.0);
        let (m, _) = run_dataset(&mut codec, &d, eps, 4, false);
        assert!((m.ratio() - 8.0).abs() < 4.0, "ratio {}", m.ratio());
    }

    #[test]
    fn timing_summary_statistics() {
        let s = TimingSummary::from_samples(&[0.9, 0.1, 0.3]);
        assert_eq!(s.min, 0.1);
        assert_eq!(s.median, 0.3);
        assert!((s.mean - 1.3 / 3.0).abs() < 1e-12);
        assert_eq!(s.reps, 3);
        assert_eq!(s.p50, 0.3);
        assert_eq!(s.p99, 0.9);
        // Even count: median is the midpoint average; the nearest-rank p50
        // is the lower of the two middle samples.
        let s = TimingSummary::from_samples(&[0.4, 0.2, 0.8, 0.6]);
        assert!((s.median - 0.5).abs() < 1e-12);
        assert_eq!(s.p50, 0.4);
        assert_eq!(s.p99, 0.8);
        // Throughput uses the steady-state (min) repetition, so one slow
        // first rep (page faults) cannot skew it.
        assert_eq!(s.mbps(2_000_000), 10.0);
        // Percentiles over a larger distribution: p99 isolates the tail.
        let many: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = TimingSummary::from_samples(&many);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(TimingSummary::from_samples(&[]), TimingSummary::default());
    }

    #[test]
    fn repeat_timed_summarizes_each_rep() {
        let mut calls = 0;
        let s = repeat_timed(5, || {
            calls += 1;
            calls as f64
        });
        assert_eq!(calls, 5);
        assert_eq!(s.reps, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn metrics_arithmetic() {
        let m = RunMetrics {
            raw_bytes: 8_000_000,
            compressed_bytes: 1_000_000,
            compress_seconds: 1.0,
            decompress_seconds: 0.5,
            ..Default::default()
        };
        assert_eq!(m.ratio(), 8.0);
        assert_eq!(m.compress_mbps(), 8.0);
        assert_eq!(m.decompress_mbps(), 16.0);
        assert_eq!(m.bit_rate(), 8.0);
    }
}
