//! Benchmark harness regenerating every table and figure of the MDZ paper.
//!
//! The [`harness`] module drives MDZ (VQ / VQT / MT / ADP) and the six
//! baselines uniformly through [`mdz_core::Codec`], plus buffer-sliced
//! dataset runs that measure compression ratio, throughput, and error
//! metrics. The [`experiments`] module contains one function per paper
//! artifact (`table1` … `fig16`), each writing CSV into `results/` and
//! returning a printable text table. The `experiments` binary is a thin CLI
//! over those functions.

pub mod experiments;
pub mod harness;
pub mod json;
pub mod table;

pub use harness::{mdz_codec, standard_codecs, RunMetrics, TimingSummary};
pub use mdz_core::Codec;
