//! Property-style coverage for [`TimingSummary`]'s nearest-rank
//! percentiles: for every sample count up to 300 the p50/p99 the summary
//! reports must equal the textbook integer-arithmetic nearest rank, and
//! the float-epsilon guard in the rank computation must never produce an
//! out-of-range index (the loop would panic if it did).

use mdz_bench::TimingSummary;

/// Distinct, unsorted samples so rank k maps to exactly one value and the
/// summary's internal sort is actually exercised. Sorted value at rank k
/// (1-based) is `k as f64 * 0.25`.
fn samples(n: usize) -> Vec<f64> {
    let mut s: Vec<f64> = (1..=n).map(|k| k as f64 * 0.25).collect();
    s.reverse();
    // Interleave a little so the order is not merely reversed.
    if n >= 4 {
        s.swap(0, n / 2);
        s.swap(1, n - 2);
    }
    s
}

/// Textbook nearest-rank: the ⌈p·n⌉-th smallest sample (1-based), with the
/// ceiling computed in exact integer arithmetic for p = percent/100.
fn reference_rank(percent: usize, n: usize) -> usize {
    ((percent * n).div_ceil(100)).clamp(1, n)
}

#[test]
fn p50_and_p99_match_integer_nearest_rank_for_all_counts_up_to_300() {
    for n in 1..=300 {
        let summary = TimingSummary::from_samples(&samples(n));
        assert_eq!(summary.reps, n);
        for (percent, got) in [(50, summary.p50), (99, summary.p99)] {
            let want = reference_rank(percent, n) as f64 * 0.25;
            assert_eq!(got, want, "p{percent} with {n} samples");
        }
        // min/median sanity while we are here: both derive from the same
        // sorted array, so a bad sort would surface in all three.
        assert_eq!(summary.min, 0.25, "min with {n} samples");
    }
}

#[test]
fn boundary_rep_counts() {
    // n = 1: every percentile is the single sample.
    let one = TimingSummary::from_samples(&[7.5]);
    assert_eq!((one.p50, one.p99, one.median), (7.5, 7.5, 7.5));

    // n = 2: p50 is the first sample (⌈0.5·2⌉ = 1), p99 the second, and
    // the median averages the pair.
    let two = TimingSummary::from_samples(&[4.0, 2.0]);
    assert_eq!((two.p50, two.p99), (2.0, 4.0));
    assert_eq!(two.median, 3.0);

    // n = 99: ⌈0.99·99⌉ = 99 — the maximum, not sample 98. A naive
    // `(0.99 * 99.0).ceil()` gets this right only because the guard's
    // epsilon is far smaller than the 0.01 slack; assert it explicitly.
    let ninety_nine = TimingSummary::from_samples(&samples(99));
    assert_eq!(ninety_nine.p99, 99.0 * 0.25);

    // n = 100: 0.99 × 100 is exactly 99 in f64; the epsilon guard must
    // keep the ceiling at 99 (second-largest), not let it round to 100.
    let hundred = TimingSummary::from_samples(&samples(100));
    assert_eq!(hundred.p99, 99.0 * 0.25);
    assert_eq!(hundred.p50, 50.0 * 0.25);
}

#[test]
fn degenerate_inputs_stay_in_range() {
    // Empty input is all zeros, not a panic.
    assert_eq!(TimingSummary::from_samples(&[]), TimingSummary::default());
    // Identical samples: every percentile is that value.
    let flat = TimingSummary::from_samples(&[1.5; 64]);
    assert_eq!((flat.p50, flat.p99, flat.min, flat.mean), (1.5, 1.5, 1.5, 1.5));
}
