//! Schema validation for `BENCH_server.json`.
//!
//! By default this test runs the serve experiment at Test scale — real
//! sockets, real generator threads, both engines — and validates the JSON
//! it writes. When `MDZ_BENCH_JSON` points at an existing file —
//! `scripts/verify.sh` sets it to the artifact the load generator just
//! produced, and the committed `results/BENCH_server.json` is validated
//! the same way — that file is validated instead.

use mdz_bench::experiments::{self, Ctx};
use mdz_bench::json::Json;
use mdz_sim::Scale;

fn validate(doc: &Json) {
    assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("serve"));
    let scale = doc.get("scale").and_then(Json::as_str).expect("scale").to_string();
    for key in ["n_frames", "n_atoms", "get_span_frames"] {
        let v = doc.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("missing {key}"));
        assert!(v > 0.0, "{key} must be positive");
    }
    // Host caveats must be recorded: absolute numbers from a shared small
    // host are not engine limits, and the artifact has to say so.
    let host = doc.get("host").expect("host");
    assert!(host.get("hw_threads").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0);
    assert!(!host.get("caveats").and_then(Json::as_str).unwrap_or("").is_empty());

    let cells = doc.get("cells").and_then(Json::as_array).expect("cells");
    assert!(!cells.is_empty(), "no cells measured");
    let mut engines = std::collections::BTreeSet::new();
    let mut max_epoll_conns = 0usize;
    for cell in cells {
        let engine = cell.get("engine").and_then(Json::as_str).expect("engine");
        assert!(matches!(engine, "threads" | "epoll"), "unknown engine {engine}");
        engines.insert(engine.to_string());
        let mode = cell.get("mode").and_then(Json::as_str).expect("mode");
        assert!(matches!(mode, "closed" | "open-burst"), "unknown mode {mode}");
        let conns = cell.get("connections").and_then(Json::as_f64).expect("connections");
        let requests = cell.get("requests").and_then(Json::as_f64).expect("requests");
        let rps = cell.get("requests_per_second").and_then(Json::as_f64).expect("rps");
        assert!(
            conns >= 1.0 && requests >= conns,
            "cell too small: {conns} conns, {requests} reqs"
        );
        assert!(rps.is_finite() && rps > 0.0, "requests_per_second must be positive");
        if engine == "epoll" {
            max_epoll_conns = max_epoll_conns.max(conns as usize);
        }
        let lat = cell.get("latency").expect("latency");
        let p50 = lat.get("p50_seconds").and_then(Json::as_f64).expect("p50");
        let p99 = lat.get("p99_seconds").and_then(Json::as_f64).expect("p99");
        let samples = lat.get("samples").and_then(Json::as_f64).expect("samples");
        assert!(p50 >= 0.0 && p50 <= p99, "p50 {p50} > p99 {p99}");
        assert_eq!(samples, requests, "one latency sample per request");
        // The independent-tally cross-check: the server's own
        // request_seconds count matched the generator's completion count.
        assert!(
            matches!(cell.get("accounting_exact"), Some(Json::Bool(true))),
            "server/request accounting diverged in a {engine}/{mode} cell"
        );
    }
    if cfg!(any(target_os = "linux", target_os = "macos")) {
        assert!(engines.contains("epoll"), "the event engine was not measured");
    }
    assert!(engines.contains("threads"), "the threaded oracle was not measured");
    // Past Test scale the sweep must include the 1024-connection cell —
    // the concurrency claim the event engine exists for.
    if scale != "test" {
        assert!(max_epoll_conns >= 1024, "epoll sweep topped out at {max_epoll_conns} connections");
    }
}

#[test]
fn server_json_schema() {
    if let Ok(path) = std::env::var("MDZ_BENCH_JSON") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        validate(&Json::parse(&text).expect("valid JSON"));
        return;
    }
    let dir = std::env::temp_dir().join(format!("mdz_server_json_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ctx = Ctx::new(Scale::Test, dir.clone(), 42);
    let tables = experiments::run("serve", &mut ctx).expect("serve experiment");
    assert!(!tables.is_empty() && !tables[0].rows.is_empty());
    let text = std::fs::read_to_string(dir.join("BENCH_server.json")).expect("JSON written");
    validate(&Json::parse(&text).expect("valid JSON"));
    let _ = std::fs::remove_dir_all(&dir);
}
