//! Smoke tests: every experiment runs at Test scale, produces non-empty
//! tables, and writes its CSV artifacts.

use mdz_bench::experiments::{self, Ctx, ALL};
use mdz_sim::Scale;

fn test_ctx(tag: &str) -> (Ctx, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("mdz_exp_smoke_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (Ctx::new(Scale::Test, dir.clone(), 42), dir)
}

#[test]
fn every_experiment_runs_at_test_scale() {
    let (mut ctx, dir) = test_ctx("all");
    for id in ALL {
        let tables = experiments::run(id, &mut ctx).unwrap_or_else(|| panic!("unknown id {id}"));
        assert!(!tables.is_empty(), "{id}: no tables");
        for t in &tables {
            assert!(!t.header.is_empty(), "{id}: empty header");
            assert!(!t.rows.is_empty(), "{id}: empty table");
            let rendered = t.render();
            assert!(rendered.contains("=="), "{id}: render missing title");
        }
    }
    // CSVs landed on disk.
    let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert!(files.len() >= ALL.len(), "expected ≥{} CSVs, got {}", ALL.len(), files.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_experiment_is_rejected() {
    let (mut ctx, dir) = test_ctx("unknown");
    assert!(experiments::run("fig99", &mut ctx).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dataset_cache_is_stable_across_experiments() {
    let (mut ctx, dir) = test_ctx("cache");
    let a = ctx.dataset(mdz_sim::DatasetKind::CopperB).snapshots[0].x.clone();
    let b = ctx.dataset(mdz_sim::DatasetKind::CopperB).snapshots[0].x.clone();
    assert_eq!(a, b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig12_contains_every_codec_and_dataset() {
    let (mut ctx, dir) = test_ctx("fig12");
    let tables = experiments::run("fig12", &mut ctx).unwrap();
    let body = tables[0].render();
    for name in ["MDZ", "SZ2", "ASN", "TNG", "HRTC", "MDB", "LFZip", "SZ3"] {
        assert!(body.contains(name), "missing codec {name}");
    }
    for ds in ["Copper-A", "Copper-B", "Helium-A", "Helium-B", "ADK", "IFABP", "Pt", "LJ"] {
        assert!(body.contains(ds), "missing dataset {ds}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig11_adp_is_never_far_from_best() {
    let (mut ctx, dir) = test_ctx("fig11");
    let tables = experiments::run("fig11", &mut ctx).unwrap();
    for row in &tables[0].rows {
        // Columns: dataset, BS, VQ, VQT, MT, ADP.
        let parse = |c: &String| c.parse::<f64>().unwrap_or(f64::NAN);
        let best = parse(&row[2]).max(parse(&row[3])).max(parse(&row[4]));
        let adp = parse(&row[5]);
        assert!(adp > best * 0.5, "{}: ADP {adp} far below best {best}", row[0]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
