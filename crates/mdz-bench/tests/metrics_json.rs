//! Schema and accounting validation for the metrics snapshot
//! (`BENCH_metrics.json` / the METRICS protocol verb).
//!
//! By default this test drives a real loopback server against a shared
//! registry and checks that the fetched snapshot's request, cache, and
//! error counters exactly match the traffic it generated — including the
//! ADP winner counters recorded while *writing* the archive. When
//! `MDZ_BENCH_JSON` points at an existing file — `scripts/verify.sh` sets
//! it to the artifact `mdz stats --metrics --json` just produced — that
//! file is schema-validated instead, with exact expectations taken from
//! `MDZ_METRICS_EXPECT_*` environment variables.

use std::sync::Arc;

use mdz_bench::json::Json;
use mdz_core::{ErrorBound, Frame, MdzConfig, Obs};
use mdz_store::{
    write_store, Client, ReaderOptions, Registry, Server, ServerConfig, StoreOptions, StoreReader,
};

fn counters_of(doc: &Json) -> Vec<(String, f64)> {
    match doc.get("counters") {
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(k, v)| (k.clone(), v.as_f64().expect("counter values are numbers")))
            .collect(),
        other => panic!("counters must be an object, got {other:?}"),
    }
}

fn counter(doc: &Json, name: &str) -> f64 {
    counters_of(doc)
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("missing counter {name}"))
}

/// Counters are monotone and only materialize on first increment, so a
/// counter that is absent from a snapshot is exactly zero.
fn counter_or_zero(doc: &Json, name: &str) -> f64 {
    counters_of(doc).iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0.0)
}

/// Structural checks every metrics document must pass, regardless of the
/// traffic that produced it.
fn validate_schema(doc: &Json) {
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("mdz-metrics-v1"));
    for (name, value) in counters_of(doc) {
        assert!(value >= 0.0 && value == value.trunc(), "counter {name} = {value}");
    }
    assert!(matches!(doc.get("gauges"), Some(Json::Obj(_))), "gauges must be an object");
    let histograms = doc.get("histograms").and_then(Json::as_array).expect("histograms array");
    for h in histograms {
        let name = h.get("name").and_then(Json::as_str).expect("histogram name");
        let count = h.get("count").and_then(Json::as_f64).expect("histogram count");
        assert!(count >= 1.0, "{name}: empty histograms are not snapshotted");
        let field = |key: &str| {
            h.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("{name}: missing {key}"))
        };
        let (sum, min, max) = (field("sum"), field("min"), field("max"));
        let (p50, p99) = (field("p50"), field("p99"));
        assert!(min <= p50 && p50 <= p99 && p99 <= max, "{name}: {min} {p50} {p99} {max}");
        assert!(sum >= min && sum.is_finite(), "{name}: sum {sum}");
    }
    // The serving layer records a latency sample for every request it
    // counts, so the histogram and the counter must agree whenever the
    // snapshot contains served traffic at all.
    let requests = counter_or_zero(doc, "store.requests");
    if let Some(h) = histograms
        .iter()
        .find(|h| h.get("name").and_then(Json::as_str) == Some("server.request_seconds"))
    {
        assert_eq!(h.get("count").and_then(Json::as_f64), Some(requests));
    }
}

fn env_expectation(var: &str) -> Option<f64> {
    std::env::var(var).ok().map(|v| v.parse::<f64>().unwrap_or_else(|e| panic!("{var}: {e}")))
}

#[test]
fn metrics_json_schema_and_traffic_accounting() {
    if let Ok(path) = std::env::var("MDZ_BENCH_JSON") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let doc = Json::parse(&text).expect("valid JSON");
        validate_schema(&doc);
        for (var, name) in [
            ("MDZ_METRICS_EXPECT_REQUESTS", "store.requests"),
            ("MDZ_METRICS_EXPECT_GETS", "server.requests.get"),
            ("MDZ_METRICS_EXPECT_CACHE_MISSES", "store.cache.misses"),
            ("MDZ_METRICS_EXPECT_CACHE_HITS", "store.cache.hits"),
            ("MDZ_METRICS_EXPECT_ERRORS", "store.decode_errors"),
        ] {
            if let Some(want) = env_expectation(var) {
                assert_eq!(counter_or_zero(&doc, name), want, "{name} vs {var}");
            }
        }
        return;
    }

    // Self-contained mode: one registry shared by the archive writer, the
    // reader, and the server, so the snapshot spans the whole stack.
    let registry = Arc::new(Registry::new());
    let frames: Vec<Frame> = (0..16)
        .map(|t| {
            let axis = |off: f64| -> Vec<f64> {
                (0..6).map(|i| (i % 4) as f64 * 2.0 + t as f64 * 1e-3 + off).collect()
            };
            Frame::new(axis(0.0), axis(1.0), axis(2.0))
        })
        .collect();
    let mut opts = StoreOptions::new(MdzConfig::new(ErrorBound::Absolute(1e-4)));
    opts.buffer_size = 4;
    opts.epoch_interval = 2;
    opts.obs = Obs::new(registry.clone());
    let data = write_store(&frames, &[], &[], &opts).unwrap();

    // Writing 4 buffers × 3 axes through instrumented compressors.
    // `core.encode.buffers` counts encode *passes*: an ADP trial encodes
    // its buffer once per candidate method. Per axis: 2 trials (buffer 0
    // and the epoch re-anchor at buffer 2) × 3 candidates + 2 plain
    // buffers = 8 passes.
    assert_eq!(registry.counter("core.encode.buffers"), 24);
    let trials = registry.counter("core.adp.trials");
    assert!(trials >= 3, "each axis runs at least one ADP trial, got {trials}");
    let wins: u64 = ["vq", "vqt", "mt", "mt2", "other"]
        .iter()
        .map(|m| registry.counter(&format!("core.adp.win.{m}")))
        .sum();
    assert_eq!(wins, trials, "every ADP trial records exactly one winner");

    let reader =
        StoreReader::with_registry(data, ReaderOptions::default(), registry.clone()).unwrap();
    let server = Server::bind(reader, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    let join = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(addr).unwrap();
    client.get(0..4).unwrap(); // epoch 0: miss
    client.get(4..8).unwrap(); // epoch 0: hit
    client.get(8..12).unwrap(); // epoch 1: miss
    client.stats().unwrap();
    let snapshot = client.metrics().unwrap();
    handle.shutdown();
    drop(client);
    join.join().unwrap();

    // Exact accounting: the METRICS request itself is not yet counted.
    assert_eq!(snapshot.counter("store.requests"), 4);
    assert_eq!(snapshot.counter("server.requests.get"), 3);
    assert_eq!(snapshot.counter("server.requests.stats"), 1);
    assert_eq!(snapshot.counter("server.requests.metrics"), 0);
    assert_eq!(snapshot.counter("server.status.ok"), 4);
    assert_eq!(snapshot.counter("store.cache.misses"), 2);
    assert_eq!(snapshot.counter("store.cache.hits"), 1);
    assert_eq!(snapshot.counter("store.buffers_decoded"), 4);
    assert_eq!(snapshot.counter("store.decode_errors"), 0);
    assert!(snapshot.counter("store.bytes_out") > 0);
    assert!(snapshot.counter("store.bytes_in") > 0);
    assert_eq!(snapshot.histogram("server.request_seconds").unwrap().count, 4);
    assert_eq!(snapshot.histogram("server.get_seconds").unwrap().count, 3);
    // Decoding 2 epochs × 2 buffers × 3 axes.
    assert_eq!(snapshot.counter("core.decode.blocks"), 12);

    // The JSON rendering of the same snapshot passes the schema gate.
    let doc = Json::parse(&snapshot.to_json()).expect("to_json emits valid JSON");
    validate_schema(&doc);
    assert_eq!(counter(&doc, "store.requests"), 4.0);
}
