//! Schema validation for `BENCH_latency.json`.
//!
//! By default this test runs the latency experiment at Test scale and
//! validates the JSON it writes. When `MDZ_BENCH_JSON` points at an
//! existing file — `scripts/verify.sh` sets it to the artifact the
//! `experiments` binary just produced — that file is validated instead.

use mdz_bench::experiments::{self, Ctx};
use mdz_bench::json::Json;
use mdz_sim::Scale;

fn validate(doc: &Json) {
    for key in ["experiment", "scale", "dataset"] {
        assert!(doc.get(key).and_then(Json::as_str).is_some(), "missing string field {key}");
    }
    assert_eq!(doc.get("experiment").unwrap().as_str(), Some("latency"));
    for key in ["raw_bytes", "n_frames", "buffer_frames", "probes", "reps"] {
        let v = doc.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("missing {key}"));
        assert!(v > 0.0, "{key} must be positive, got {v}");
    }
    let entries = doc.get("entries").and_then(Json::as_array).expect("entries array");
    assert!(!entries.is_empty(), "no entries");
    let mut intervals = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let k = e
            .get("epoch_interval")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("entry {i}: missing epoch_interval"));
        assert!(k >= 1.0 && k == k.trunc(), "entry {i}: bad epoch interval {k}");
        intervals.push(k as usize);
        for key in ["n_epochs", "archive_bytes", "speedup_vs_sequential", "buffers_per_probe"] {
            let v = e.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("missing {key}"));
            assert!(v.is_finite() && v > 0.0, "entry {i}: {key} = {v}");
        }
        // O(epoch) contract, visible in the artifact itself: one probe may
        // decode at most one epoch (plus nothing else).
        let per_probe = e.get("buffers_per_probe").unwrap().as_f64().unwrap();
        assert!(per_probe <= k + 1e-9, "entry {i}: probe decoded {per_probe} buffers > epoch {k}");
        for side in ["probe_timing", "sequential_timing"] {
            let t = e.get(side).unwrap_or_else(|| panic!("entry {i}: missing {side}"));
            let min = t.get("min_seconds").and_then(Json::as_f64).expect("min_seconds");
            let p50 = t.get("p50_seconds").and_then(Json::as_f64).expect("p50_seconds");
            let p99 = t.get("p99_seconds").and_then(Json::as_f64).expect("p99_seconds");
            let samples = t.get("samples").and_then(Json::as_f64).expect("samples");
            assert!(min > 0.0 && min <= p50, "entry {i}: min {min} > p50 {p50}");
            assert!(p50 <= p99, "entry {i}: p50 {p50} > p99 {p99}");
            assert!(samples >= 1.0, "entry {i}: no samples");
        }
    }
    // The sweep must cover more than one interval so the ratio-vs-seek
    // trade-off is actually visible.
    intervals.dedup();
    assert!(intervals.len() >= 2, "sweep covers a single epoch interval");
}

#[test]
fn latency_json_schema() {
    if let Ok(path) = std::env::var("MDZ_BENCH_JSON") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        validate(&Json::parse(&text).expect("valid JSON"));
        return;
    }
    let dir = std::env::temp_dir().join(format!("mdz_latency_json_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ctx = Ctx::new(Scale::Test, dir.clone(), 42).with_reps(2);
    let tables = experiments::run("latency", &mut ctx).expect("latency experiment");
    assert!(!tables.is_empty() && !tables[0].rows.is_empty());
    let text = std::fs::read_to_string(dir.join("BENCH_latency.json")).expect("JSON written");
    validate(&Json::parse(&text).expect("valid JSON"));
    let _ = std::fs::remove_dir_all(&dir);
}
