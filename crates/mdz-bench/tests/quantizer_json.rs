//! Schema validation for `BENCH_quantizer.json`.
//!
//! By default this test runs the quantizer experiment at Test scale and
//! validates the JSON it writes. When `MDZ_BENCH_JSON` points at an
//! existing file — `scripts/verify.sh` sets it to the artifact the
//! `experiments` binary just produced — that file is validated instead.
//!
//! Beyond field presence, the schema encodes the experiment's claim: on
//! the non-crystal `Gas` corpus the adaptive pipeline with bit-adaptive
//! candidates must beat the linear-only pipeline's compression ratio
//! strictly, at the same bound, with the bound verified per value.

use mdz_bench::experiments::{self, Ctx};
use mdz_bench::json::Json;
use mdz_sim::Scale;

fn validate(doc: &Json) {
    assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("quantizer"));
    assert!(doc.get("scale").and_then(Json::as_str).is_some(), "missing scale");
    let bound = doc.get("bound_abs").and_then(Json::as_f64).expect("bound_abs");
    assert!(bound > 0.0 && bound.is_finite(), "bad bound {bound}");
    let bs = doc.get("buffer_snapshots").and_then(Json::as_f64).expect("buffer_snapshots");
    assert!(bs >= 1.0 && bs == bs.trunc(), "bad buffer size {bs}");

    let entries = doc.get("entries").and_then(Json::as_array).expect("entries array");
    assert!(!entries.is_empty(), "no entries");
    // (dataset, codec) -> ratio, collected while checking each entry.
    let mut ratios: Vec<(String, String, f64)> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let dataset = e.get("dataset").and_then(Json::as_str).expect("dataset").to_string();
        let codec = e.get("codec").and_then(Json::as_str).expect("codec").to_string();
        for key in ["raw_bytes", "compressed_bytes", "ratio", "blocks"] {
            let v = e
                .get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("entry {i}: missing {key}"));
            assert!(v.is_finite() && v > 0.0, "entry {i}: {key} = {v}");
        }
        let max_err = e.get("max_abs_err").and_then(Json::as_f64).expect("max_abs_err");
        assert!(
            max_err <= bound * (1.0 + 1e-9),
            "entry {i}: max error {max_err} exceeds bound {bound}"
        );
        assert_eq!(
            e.get("bound_ok"),
            Some(&Json::Bool(true)),
            "entry {i}: per-value bound check failed"
        );
        let ba = e.get("bit_adaptive_blocks").and_then(Json::as_f64).expect("bit_adaptive_blocks");
        let blocks = e.get("blocks").and_then(Json::as_f64).unwrap();
        assert!((0.0..=blocks).contains(&ba), "entry {i}: {ba} BA blocks of {blocks}");
        if !codec.contains("+BA") {
            assert_eq!(ba, 0.0, "entry {i}: linear-only codec emitted bit-adaptive blocks");
        }
        let ratio = e.get("ratio").and_then(Json::as_f64).unwrap();
        ratios.push((dataset, codec, ratio));
    }

    // The headline claim: strictly better ratio with bit-adaptive
    // candidates on the gas corpus at the same (verified) bound.
    let find = |dataset: &str, ba: bool| {
        ratios
            .iter()
            .find(|(d, c, _)| d == dataset && c.contains("+BA") == ba)
            .unwrap_or_else(|| panic!("missing {dataset} entry (ba = {ba})"))
            .2
    };
    let gas_linear = find("Gas", false);
    let gas_ba = find("Gas", true);
    assert!(
        gas_ba > gas_linear,
        "bit-adaptive candidates did not improve the gas ratio: {gas_ba} <= {gas_linear}"
    );
    // And on the crystal corpus the enlarged candidate space must never
    // hurt: the linear candidate is still in the trial set.
    let crystal = ratios.iter().find(|(d, _, _)| d != "Gas").expect("crystal entries");
    let crystal_linear = find(&crystal.0, false);
    let crystal_ba = find(&crystal.0, true);
    assert!(
        crystal_ba >= crystal_linear * (1.0 - 1e-9),
        "bit-adaptive candidates regressed the crystal ratio: {crystal_ba} < {crystal_linear}"
    );
}

#[test]
fn quantizer_json_schema() {
    if let Ok(path) = std::env::var("MDZ_BENCH_JSON") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        validate(&Json::parse(&text).expect("valid JSON"));
        return;
    }
    let dir = std::env::temp_dir().join(format!("mdz_quantizer_json_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ctx = Ctx::new(Scale::Test, dir.clone(), 42);
    let tables = experiments::run("quantizer", &mut ctx).expect("quantizer experiment");
    assert!(!tables.is_empty() && !tables[0].rows.is_empty());
    let text = std::fs::read_to_string(dir.join("BENCH_quantizer.json")).expect("JSON written");
    validate(&Json::parse(&text).expect("valid JSON"));
    let _ = std::fs::remove_dir_all(&dir);
}
