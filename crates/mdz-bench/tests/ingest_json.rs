//! Schema validation for `BENCH_ingest.json`.
//!
//! By default this test runs the ingest experiment at Test scale — a live
//! in-process server, a real APPEND producer, and real tailing followers —
//! and validates the JSON it writes. When `MDZ_BENCH_JSON` points at an
//! existing file — `scripts/verify.sh` sets it to the artifact the
//! `experiments` binary just produced — that file is validated instead.

use mdz_bench::experiments::{self, Ctx};
use mdz_bench::json::Json;
use mdz_sim::Scale;

fn validate(doc: &Json) {
    for key in ["experiment", "scale", "dataset"] {
        assert!(doc.get(key).and_then(Json::as_str).is_some(), "missing string field {key}");
    }
    assert_eq!(doc.get("experiment").unwrap().as_str(), Some("ingest"));
    for key in [
        "n_frames",
        "n_atoms",
        "buffer_frames",
        "appends",
        "followers",
        "appended_frames",
        "append_frames_per_second",
        "append_raw_mb_per_second",
    ] {
        let v = doc.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("missing {key}"));
        assert!(v.is_finite() && v > 0.0, "{key} must be positive, got {v}");
    }
    let appended =
        doc.get("appended_frames").and_then(Json::as_f64).expect("appended_frames") as usize;
    let total = doc.get("n_frames").and_then(Json::as_f64).expect("n_frames") as usize;
    assert!(appended < total, "some frames must predate the live phase");
    for side in ["append_timing", "staleness_timing"] {
        let t = doc.get(side).unwrap_or_else(|| panic!("missing {side}"));
        let min = t.get("min_seconds").and_then(Json::as_f64).expect("min_seconds");
        let p50 = t.get("p50_seconds").and_then(Json::as_f64).expect("p50_seconds");
        let p99 = t.get("p99_seconds").and_then(Json::as_f64).expect("p99_seconds");
        let samples = t.get("samples").and_then(Json::as_f64).expect("samples");
        assert!(min >= 0.0 && min <= p50, "{side}: min {min} > p50 {p50}");
        assert!(p50 <= p99, "{side}: p50 {p50} > p99 {p99}");
        assert!(samples >= 1.0, "{side}: no samples");
    }
    // Every staleness reference point (append × follower) must have been
    // observed — a missing sample means a follower never caught up.
    let appends = doc.get("appends").and_then(Json::as_f64).expect("appends");
    let followers = doc.get("followers").and_then(Json::as_f64).expect("followers");
    let staleness_samples = doc
        .get("staleness_timing")
        .and_then(|t| t.get("samples"))
        .and_then(Json::as_f64)
        .expect("staleness samples");
    assert_eq!(staleness_samples, appends * followers, "followers missed durable chunks");
    // The correctness bit the whole design hangs on: follower streams are
    // bit-exact prefixes of the offline decode.
    assert!(
        matches!(doc.get("followers_bitexact"), Some(Json::Bool(true))),
        "followers_bitexact must be true"
    );
}

#[test]
fn ingest_json_schema() {
    if let Ok(path) = std::env::var("MDZ_BENCH_JSON") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        validate(&Json::parse(&text).expect("valid JSON"));
        return;
    }
    let dir = std::env::temp_dir().join(format!("mdz_ingest_json_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ctx = Ctx::new(Scale::Test, dir.clone(), 42);
    let tables = experiments::run("ingest", &mut ctx).expect("ingest experiment");
    assert!(!tables.is_empty() && !tables[0].rows.is_empty());
    let text = std::fs::read_to_string(dir.join("BENCH_ingest.json")).expect("JSON written");
    validate(&Json::parse(&text).expect("valid JSON"));
    let _ = std::fs::remove_dir_all(&dir);
}
