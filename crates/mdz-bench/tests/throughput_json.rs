//! Schema validation for `BENCH_throughput.json`.
//!
//! By default this test runs the throughput experiment at Test scale with
//! one repetition and validates the JSON it writes. When the
//! `MDZ_BENCH_JSON` environment variable points at an existing file —
//! `scripts/verify.sh` sets it to the artifact the `experiments` binary
//! just produced — that file is validated instead, so the smoke check
//! exercises the real CLI path.

use mdz_bench::experiments::{self, Ctx};
use mdz_bench::json::Json;
use mdz_sim::Scale;

fn validate(doc: &Json) {
    for key in ["experiment", "scale", "dataset"] {
        assert!(doc.get(key).and_then(Json::as_str).is_some(), "missing string field {key}");
    }
    assert_eq!(doc.get("experiment").unwrap().as_str(), Some("throughput"));
    for key in ["raw_bytes", "buffer_snapshots", "reps", "hardware_threads"] {
        let v = doc.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("missing {key}"));
        assert!(v > 0.0, "{key} must be positive, got {v}");
    }
    let entries = doc.get("entries").and_then(Json::as_array).expect("entries array");
    assert!(!entries.is_empty(), "no entries");
    let mut saw_serial_baseline = 0;
    for (i, e) in entries.iter().enumerate() {
        let codec = e.get("codec").and_then(Json::as_str).unwrap_or_else(|| panic!("entry {i}"));
        assert!(["ADP", "VQ", "VQT", "MT"].contains(&codec), "unknown codec {codec}");
        let workers = e.get("workers").and_then(Json::as_f64).expect("workers");
        assert!(workers >= 1.0 && workers == workers.trunc(), "bad workers {workers}");
        for key in
            ["compress_mbps", "decompress_mbps", "ratio", "compress_speedup", "decompress_speedup"]
        {
            let v = e.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("missing {key}"));
            assert!(v.is_finite() && v > 0.0, "entry {i}: {key} = {v}");
        }
        assert!(e.get("ratio").unwrap().as_f64().unwrap() > 1.0, "entry {i}: CR below 1");
        for side in ["compress_timing", "decompress_timing"] {
            let t = e.get(side).unwrap_or_else(|| panic!("entry {i}: missing {side}"));
            let min = t.get("min_seconds").and_then(Json::as_f64).expect("min_seconds");
            let median = t.get("median_seconds").and_then(Json::as_f64).expect("median_seconds");
            let mean = t.get("mean_seconds").and_then(Json::as_f64).expect("mean_seconds");
            assert!(min > 0.0 && min <= median, "entry {i}: min {min} > median {median}");
            assert!(mean >= min, "entry {i}: mean {mean} < min {min}");
        }
        if workers == 1.0 {
            saw_serial_baseline += 1;
            let s = e.get("compress_speedup").unwrap().as_f64().unwrap();
            assert!((s - 1.0).abs() < 1e-9, "serial speedup must be 1.0, got {s}");
        }
    }
    assert!(saw_serial_baseline > 0, "no serial baseline entries");

    // The per-stage scalar-vs-SIMD breakdown added with the kernel
    // dispatch: a backend name, the five pipeline stages in order, and a
    // caveat when the host ran scalar kernels on both arms.
    let simd = doc.get("simd").expect("missing simd breakdown");
    let backend = simd.get("backend").and_then(Json::as_str).expect("simd.backend");
    assert!(
        ["scalar", "sse4.1", "avx2", "neon"].contains(&backend),
        "unknown simd backend {backend}"
    );
    assert!(
        simd.get("force_scalar_override").and_then(Json::as_str).is_some(),
        "missing simd.force_scalar_override"
    );
    if backend == "scalar" {
        assert!(
            simd.get("caveat").and_then(Json::as_str).is_some(),
            "scalar backend must carry a host-feature caveat"
        );
    }
    let stages = simd.get("stages").and_then(Json::as_array).expect("simd.stages");
    let names: Vec<&str> =
        stages.iter().map(|s| s.get("stage").and_then(Json::as_str).expect("stage name")).collect();
    assert_eq!(
        names,
        [
            "encode.predict_quantize",
            "encode.entropy",
            "encode.lossless",
            "decode.lossless",
            "decode.reconstruct"
        ],
        "unexpected stage set"
    );
    for (i, s) in stages.iter().enumerate() {
        for key in ["scalar_seconds", "simd_seconds", "speedup"] {
            let v = s
                .get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("stage {i}: missing {key}"));
            assert!(v.is_finite() && v > 0.0, "stage {i}: {key} = {v}");
        }
    }
}

#[test]
fn throughput_json_schema() {
    if let Ok(path) = std::env::var("MDZ_BENCH_JSON") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        validate(&Json::parse(&text).expect("valid JSON"));
        return;
    }
    let dir = std::env::temp_dir().join(format!("mdz_throughput_json_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ctx = Ctx::new(Scale::Test, dir.clone(), 42).with_workers(vec![1, 2]).with_reps(1);
    let tables = experiments::run("throughput", &mut ctx).expect("throughput experiment");
    assert!(!tables.is_empty() && !tables[0].rows.is_empty());
    let text = std::fs::read_to_string(dir.join("BENCH_throughput.json")).expect("JSON written");
    validate(&Json::parse(&text).expect("valid JSON"));
    let _ = std::fs::remove_dir_all(&dir);
}
