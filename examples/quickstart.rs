//! Quickstart: compress a buffer of snapshots under an error bound.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mdz::core::{Compressor, Decompressor, ErrorBound, MdzConfig};

fn main() {
    // Ten snapshots of 10 000 "atoms" vibrating around crystal levels —
    // the kind of data MD codes dump every few thousand timesteps.
    let mut rng_state = 42u64;
    let mut noise = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        (rng_state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let snapshots: Vec<Vec<f64>> = (0..10)
        .map(|_| (0..10_000).map(|i| (i % 20) as f64 * 1.8075 + noise() * 0.08).collect())
        .collect();

    // A value-range-relative bound of 1e-3, the paper's headline setting.
    let cfg = MdzConfig::new(ErrorBound::ValueRangeRelative(1e-3));
    let mut compressor = Compressor::new(cfg);
    let block = compressor.compress_buffer(&snapshots).expect("compress");

    let raw_bytes = snapshots.len() * snapshots[0].len() * 8;
    println!("raw:        {raw_bytes} bytes");
    println!("compressed: {} bytes", block.len());
    println!("ratio:      {:.1}x", raw_bytes as f64 / block.len() as f64);
    println!(
        "method:     {} (chosen by ADP)",
        compressor.current_adaptive_choice().expect("trial ran")
    );

    let mut decompressor = Decompressor::new();
    let restored = decompressor.decompress_block(&block).expect("decompress");
    let mut max_err = 0.0f64;
    for (s, r) in snapshots.iter().zip(restored.iter()) {
        for (a, b) in s.iter().zip(r.iter()) {
            max_err = max_err.max((a - b).abs());
        }
    }
    println!("max error:  {max_err:.2e}");
}
