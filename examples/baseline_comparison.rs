//! Head-to-head comparison of every compressor in the evaluation on one
//! simulated dataset — a miniature of the paper's Fig. 12.
//!
//! ```sh
//! cargo run --release --example baseline_comparison [dataset]
//! ```

use mdz::baselines::all_baselines;
use mdz::core::{Codec, ErrorBound, MdzCodec, MdzConfig};
use mdz::sim::{datasets, DatasetKind, Scale};
use std::time::Instant;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("copper-b") | None => DatasetKind::CopperB,
        Some("helium-b") => DatasetKind::HeliumB,
        Some("adk") => DatasetKind::Adk,
        Some("lj") => DatasetKind::Lj,
        Some(other) => {
            eprintln!("unknown dataset '{other}' (try copper-b, helium-b, adk, lj)");
            std::process::exit(2);
        }
    };
    let d = datasets::generate(kind, Scale::Small, 1);
    println!(
        "{}: {} snapshots × {} atoms, eps = 1e-3 (value range), BS = 10\n",
        kind.name(),
        d.len(),
        d.atoms()
    );
    let series = d.axis_series(0);
    let raw = series.len() * d.atoms() * 8;
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in &series {
        for &v in s {
            min = min.min(v);
            max = max.max(v);
        }
    }
    let eps = 1e-3 * (max - min);

    println!("{:>8}  {:>9}  {:>10}  {:>10}", "codec", "ratio", "comp MB/s", "max error");

    // MDZ (adaptive) and every baseline, through the same Codec interface.
    let mdz: Box<dyn Codec> =
        Box::new(MdzCodec::with_name("MDZ", MdzConfig::new(ErrorBound::Absolute(eps))));
    let mut codecs = vec![mdz];
    codecs.extend(all_baselines());
    for codec in codecs.iter_mut() {
        let mut total = 0;
        let t0 = Instant::now();
        let mut max_err = 0.0f64;
        for chunk in series.chunks(10) {
            let blob = codec.compress_buffer(chunk, ErrorBound::Absolute(eps)).unwrap();
            total += blob.len();
            let out = codec.decompress_buffer(&blob).unwrap();
            for (s, o) in chunk.iter().zip(out.iter()) {
                for (a, b) in s.iter().zip(o.iter()) {
                    max_err = max_err.max((a - b).abs());
                }
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{:>8}  {:>8.1}x  {:>10.1}  {:>10.2e}",
            codec.name(),
            raw as f64 / total as f64,
            raw as f64 / 1e6 / secs,
            max_err
        );
    }
    println!("\nall codecs honour |error| ≤ {eps:.3e}");
}
