//! Streaming three-axis trajectory compression with adaptive method
//! selection, on a simulated copper crystal (the paper's Copper-B regime).
//!
//! Shows the per-axis ADP choices (the paper's Table VI observes ADP
//! picking VQ for x/y and MT for z on Copper-B) and per-buffer ratios.
//!
//! ```sh
//! cargo run --release --example adaptive_trajectory
//! ```

use mdz::core::traj::TrajectoryDecompressor;
use mdz::core::{ErrorBound, Frame, MdzConfig, TrajectoryCompressor};
use mdz::sim::{datasets, DatasetKind, Scale};

fn main() {
    let dataset = datasets::generate(DatasetKind::CopperB, Scale::Small, 7);
    println!(
        "dataset: {} — {} snapshots × {} atoms",
        dataset.kind.name(),
        dataset.len(),
        dataset.atoms()
    );

    let cfg = MdzConfig::new(ErrorBound::ValueRangeRelative(1e-3));
    let mut compressor = TrajectoryCompressor::new(cfg);
    let mut decompressor = TrajectoryDecompressor::new();

    let bs = 10;
    let frames: Vec<Frame> = dataset
        .snapshots
        .iter()
        .map(|s| Frame::new(s.x.clone(), s.y.clone(), s.z.clone()))
        .collect();

    let mut total_raw = 0usize;
    let mut total_compressed = 0usize;
    for (b, chunk) in frames.chunks(bs).enumerate() {
        let blob = compressor.compress_buffer(chunk).expect("compress");
        let raw = chunk.len() * chunk[0].len() * 24;
        total_raw += raw;
        total_compressed += blob.len();
        // Round-trip every buffer to demonstrate streaming decompression.
        let restored = decompressor.decompress_buffer(&blob).expect("decompress");
        assert_eq!(restored.len(), chunk.len());
        if b < 5 || b % 10 == 0 {
            println!(
                "buffer {b:>3}: {:>8} → {:>7} bytes ({:.1}x)",
                raw,
                blob.len(),
                raw as f64 / blob.len() as f64
            );
        }
    }
    println!(
        "\noverall ratio: {:.1}x ({} → {} bytes)",
        total_raw as f64 / total_compressed as f64,
        total_raw,
        total_compressed
    );
}
