//! Inline dump-and-compress inside a live MD simulation — the paper's
//! LAMMPS-integration scenario (Table VII).
//!
//! Runs the Lennard-Jones engine, captures a snapshot every 20 steps, and
//! compresses each 10-snapshot buffer as it fills, reporting how much time
//! the compressed output path takes relative to force computation.
//!
//! ```sh
//! cargo run --release --example inline_md_dump
//! ```

use mdz::core::{Compressor, ErrorBound, MdzConfig};
use mdz::sim::{LjSimulation, SimConfig, Snapshot};
use std::time::Instant;

fn main() {
    let mut sim = LjSimulation::new(SimConfig { n_target: 2048, ..Default::default() });
    println!("LJ liquid: {} atoms, box {:.2}σ", sim.len(), sim.box_len);

    let mk = || Compressor::new(MdzConfig::new(ErrorBound::ValueRangeRelative(1e-3)));
    let mut compressors = [mk(), mk(), mk()];
    let mut pending: Vec<Snapshot> = Vec::new();

    let steps = 1000;
    let dump_every = 20;
    let bs = 10;
    let mut compute = 0.0f64;
    let mut output = 0.0f64;
    let mut raw_bytes = 0usize;
    let mut compressed_bytes = 0usize;

    let t_total = Instant::now();
    for step in 0..steps {
        let t0 = Instant::now();
        sim.step();
        compute += t0.elapsed().as_secs_f64();
        if step % dump_every == 0 {
            let t1 = Instant::now();
            pending.push(sim.snapshot());
            if pending.len() >= bs {
                raw_bytes += pending.len() * pending[0].len() * 24;
                for (axis, c) in compressors.iter_mut().enumerate() {
                    let series: Vec<Vec<f64>> =
                        pending.iter().map(|s| s.axis(axis).to_vec()).collect();
                    compressed_bytes += c.compress_buffer(&series).expect("compress").len();
                }
                pending.clear();
            }
            output += t1.elapsed().as_secs_f64();
        }
    }
    let total = t_total.elapsed().as_secs_f64();

    println!("steps:           {steps} (dump every {dump_every}, buffer {bs})");
    println!("total time:      {total:.2} s");
    println!("force compute:   {:.1} %", compute / total * 100.0);
    println!("dump + compress: {:.1} %", output / total * 100.0);
    println!(
        "dump volume:     {:.2} MB raw → {:.2} MB compressed ({:.1}x)",
        raw_bytes as f64 / 1e6,
        compressed_bytes as f64 / 1e6,
        raw_bytes as f64 / compressed_bytes as f64
    );
    println!("temperature:     T* = {:.3}", sim.temperature());
}
