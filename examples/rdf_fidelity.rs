//! Physics-fidelity check: does lossy compression preserve the radial
//! distribution function? (The paper's Fig. 14.)
//!
//! Compresses a simulated copper crystal at roughly 10× and compares the
//! RDF of the decompressed snapshot with the original, for MDZ and for a
//! deliberately coarse bound that violates the structure.
//!
//! ```sh
//! cargo run --release --example rdf_fidelity
//! ```

use mdz::analysis::rdf::{rdf, rdf_distance, RdfConfig};
use mdz::core::{Compressor, Decompressor, ErrorBound, MdzConfig};
use mdz::sim::{datasets, DatasetKind, Scale};

fn compress_axis(series: &[Vec<f64>], eps_rel: f64) -> Vec<Vec<f64>> {
    let cfg = MdzConfig::new(ErrorBound::ValueRangeRelative(eps_rel));
    let mut c = Compressor::new(cfg);
    let mut d = Decompressor::new();
    let mut out = Vec::new();
    for chunk in series.chunks(10) {
        let blob = c.compress_buffer(chunk).expect("compress");
        out.extend(d.decompress_block(&blob).expect("decompress"));
    }
    out
}

fn main() {
    let dataset = datasets::generate(DatasetKind::CopperB, Scale::Small, 11);
    let box_len = dataset.box_len.expect("crystal has a box");
    let cfg = RdfConfig { box_len, r_max: (box_len / 2.0).min(8.0), bins: 64 };

    let s0 = &dataset.snapshots[0];
    let (centers, g_orig) = rdf(&s0.x, &s0.y, &s0.z, &cfg);

    for eps_rel in [1e-3, 3e-2] {
        let xs = compress_axis(&dataset.axis_series(0), eps_rel);
        let ys = compress_axis(&dataset.axis_series(1), eps_rel);
        let zs = compress_axis(&dataset.axis_series(2), eps_rel);
        let (_, g_dec) = rdf(&xs[0], &ys[0], &zs[0], &cfg);
        let dist = rdf_distance(&g_orig, &g_dec);
        println!("eps = {eps_rel:.0e}: RDF L1 distance = {dist:.4}");
        // Print the first coordination peak before/after.
        let peak =
            g_orig.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        println!(
            "  first peak at r = {:.2}: g_orig = {:.2}, g_decompressed = {:.2}",
            centers[peak], g_orig[peak], g_dec[peak]
        );
    }
    println!("\nA tight bound (1e-3) preserves g(r); a loose one (3e-2) distorts it —");
    println!("the reason Fig. 14 fixes the compression ratio when comparing compressors.");
}
