//! Single-precision trajectory compression through the public API.
//!
//! MD dump formats commonly store `f32`; this example compresses an `f32`
//! buffer, inspects the block tag, and narrows the reconstruction back.
//!
//! ```sh
//! cargo run --release --example f32_trajectory
//! ```

use mdz::core::{Compressor, Decompressor, ErrorBound, MdzConfig};

fn main() {
    let snapshots: Vec<Vec<f32>> = (0..8)
        .map(|t| (0..5000).map(|i| (i % 16) as f32 * 1.8 + t as f32 * 1e-4).collect())
        .collect();

    let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
    let mut compressor = Compressor::new(cfg);
    let block = compressor.compress_buffer_f32(&snapshots).expect("compress");

    let info = Decompressor::inspect(&block).expect("inspect");
    println!("method:      {}", info.method);
    println!("f32 source:  {}", info.source_f32);
    let raw = snapshots.len() * snapshots[0].len() * 4;
    println!(
        "ratio:       {:.1}x vs raw f32 ({} → {} bytes)",
        raw as f64 / block.len() as f64,
        raw,
        block.len()
    );

    let restored = Decompressor::new().decompress_block_f32(&block).expect("decompress");
    let mut max_err = 0.0f32;
    for (s, r) in snapshots.iter().zip(restored.iter()) {
        for (a, b) in s.iter().zip(r.iter()) {
            max_err = max_err.max((a - b).abs());
        }
    }
    println!("max error:   {max_err:.2e} (bound 1e-3)");
    assert!(max_err <= 1.01e-3);

    // A plain f64 decompressor call also works (widened values).
    let wide = Decompressor::new().decompress_block(&block).expect("decompress f64");
    println!("f64 view:    {} snapshots × {} values", wide.len(), wide[0].len());
}
