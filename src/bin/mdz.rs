//! `mdz` — command-line trajectory compressor.
//!
//! ```text
//! mdz compress   <in.xyz> <out.mdz> [--eps REL | --abs ABS] [--bs N] [--method M]
//! mdz decompress <in.mdz> <out.xyz>
//! mdz info       <in.mdz>
//! mdz extract    <in.mdz> <frame-index>
//! mdz verify     <archive.mdz>                 # integrity walk (CRC every frame)
//! mdz verify     <original.xyz> <compressed.mdz>  # error-bound check
//! mdz gen        <dataset> <out.xyz> [--scale test|small|full] [--seed N]
//! mdz store      <in.xyz> <out.mdz> [--bs N] [--epoch K] [--f32] [bound/method flags]
//! mdz append     <archive.mdz> <in.xyz> [--f32] [bound/method flags]
//! mdz append     --remote <addr> <in.xyz> [--f32] [--retries N]
//! mdz recover    <archive.mdz>
//! mdz get        <in.mdz> <start..end>
//! mdz serve      <in.mdz> <addr> [--engine threads|epoll] [--threads N] [--live]
//! mdz query      <addr> <start..end> [--retries N]
//! mdz follow     <addr> [from] [--until N] [--poll-ms N]
//! mdz stats      <addr> [--metrics [--json]]
//! mdz bench-ingest [--scale test|small|full] [--seed N] [--out DIR]
//! mdz bench-serve  [--scale test|small|full] [--seed N] [--out DIR]
//! ```
//!
//! `store` writes the indexed container version 2 (epoch re-anchors +
//! footer index); `get` random-access-reads it locally; `serve`/`query`/
//! `stats` speak the `mdzd` TCP protocol. `decompress` and `info` accept
//! both container versions. `stats --metrics` fetches the server's full
//! metrics snapshot (counters, gauges, latency histograms) via the
//! METRICS verb; `--json` emits it as schema-tagged JSON instead of the
//! aligned text table.
//!
//! `append` extends an existing v2 archive in place under the footer-flip
//! protocol (crash-safe: a torn append leaves the old archive intact);
//! with `--remote` the frames are sent to a live `mdzd` (started with
//! `--live` / `serve --live`) which compresses and appends them
//! server-side, acknowledging only once they are durable. `follow` tails a
//! served archive: it streams frames from `from` (default 0) as they
//! become durable, in the same layout as `get`/`query`, surviving server
//! restarts; `--until N` exits once frame N-1 has been printed.
//! One-argument `verify` walks every block and footer checksum and exits
//! non-zero at the first corrupt offset; `recover` truncates a torn tail
//! back to the last valid footer. `query --retries N` retries connect and
//! timeout failures (and BUSY responses) with decorrelated-jitter backoff.
//! `bench-ingest` runs the live-ingest benchmark (simulated producer
//! appending over TCP while followers tail) and writes
//! `BENCH_ingest.json` under `--out` (default `results/`).
//! `bench-serve` runs the server-throughput load generator (C concurrent
//! connections × pipelining depth against both engines) and writes
//! `BENCH_server.json`; `serve --engine epoll` picks the sharded
//! event-loop backend over the default worker pool.

use mdz::archive;
use mdz::core::{EntropyStage, ErrorBound, Frame, MdzConfig, Method};
use mdz::sim::{datasets, DatasetKind, Scale};
use mdz::store::{
    append_store, get_with_retry, recover_store, verify_archive, write_store, Client, Engine,
    FileIo, Precision, RetryPolicy, Server, ServerConfig, StoreOptions, StoreReader,
};
use mdz::xyz;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    exit(1)
}

fn parse_method(s: &str) -> Method {
    match s.to_ascii_lowercase().as_str() {
        "vq" => Method::Vq,
        "vqt" => Method::Vqt,
        "mt" => Method::Mt,
        "mt2" => Method::Mt2,
        "adaptive" | "adp" => Method::Adaptive,
        _ => fail("unknown method (expected vq|vqt|mt|mt2|adaptive)"),
    }
}

fn parse_dataset(s: &str) -> DatasetKind {
    match s.to_ascii_lowercase().as_str() {
        "copper-a" => DatasetKind::CopperA,
        "copper-b" => DatasetKind::CopperB,
        "helium-a" => DatasetKind::HeliumA,
        "helium-b" => DatasetKind::HeliumB,
        "adk" => DatasetKind::Adk,
        "ifabp" => DatasetKind::Ifabp,
        "pt" => DatasetKind::Pt,
        "lj" => DatasetKind::Lj,
        "hacc-1" => DatasetKind::Hacc1,
        "hacc-2" => DatasetKind::Hacc2,
        _ => fail("unknown dataset (try copper-b, helium-b, adk, lj, …)"),
    }
}

struct Opts {
    positional: Vec<String>,
    eps: Option<f64>,
    abs: Option<f64>,
    bs: usize,
    method: Method,
    range_coded: bool,
    scale: Scale,
    seed: u64,
    epoch: usize,
    f32: bool,
    threads: usize,
    engine: Engine,
    metrics: bool,
    json: bool,
    retries: Option<u32>,
    remote: Option<String>,
    live: bool,
    until: Option<usize>,
    poll_ms: u64,
    out: Option<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        positional: Vec::new(),
        eps: None,
        abs: None,
        bs: 10,
        method: Method::Adaptive,
        range_coded: false,
        scale: Scale::Small,
        seed: 20220707,
        epoch: 8,
        f32: false,
        threads: 4,
        engine: Engine::default(),
        metrics: false,
        json: false,
        retries: None,
        remote: None,
        live: false,
        until: None,
        poll_ms: 100,
        out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--eps" => o.eps = Some(value("--eps").parse().unwrap_or_else(|_| fail("bad --eps"))),
            "--abs" => o.abs = Some(value("--abs").parse().unwrap_or_else(|_| fail("bad --abs"))),
            "--bs" => o.bs = value("--bs").parse().unwrap_or_else(|_| fail("bad --bs")),
            "--method" => o.method = parse_method(&value("--method")),
            "--range-coded" => o.range_coded = true,
            "--epoch" => o.epoch = value("--epoch").parse().unwrap_or_else(|_| fail("bad --epoch")),
            "--f32" => o.f32 = true,
            "--metrics" => o.metrics = true,
            "--json" => o.json = true,
            "--retries" => {
                o.retries =
                    Some(value("--retries").parse().unwrap_or_else(|_| fail("bad --retries")))
            }
            "--remote" => o.remote = Some(value("--remote")),
            "--live" => o.live = true,
            "--until" => {
                o.until = Some(value("--until").parse().unwrap_or_else(|_| fail("bad --until")))
            }
            "--poll-ms" => {
                o.poll_ms = value("--poll-ms").parse().unwrap_or_else(|_| fail("bad --poll-ms"))
            }
            "--out" => o.out = Some(value("--out")),
            "--threads" | "--shards" => {
                o.threads = value(a).parse().unwrap_or_else(|_| fail(&format!("bad {a}")))
            }
            "--engine" => {
                o.engine = Engine::parse(&value("--engine"))
                    .unwrap_or_else(|| fail("bad --engine (threads|epoll)"))
            }
            "--seed" => o.seed = value("--seed").parse().unwrap_or_else(|_| fail("bad --seed")),
            "--scale" => {
                o.scale = match value("--scale").as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => fail("bad --scale (test|small|full)"),
                }
            }
            other if other.starts_with("--") => fail(&format!("unknown flag {other}")),
            other => o.positional.push(other.to_string()),
        }
    }
    o
}

/// Parses a `start..end` frame range.
fn parse_range(s: &str) -> std::ops::Range<usize> {
    let Some((a, b)) = s.split_once("..") else {
        fail("range must look like <start>..<end>");
    };
    let start = a.parse().unwrap_or_else(|_| fail("bad range start"));
    let end = b.parse().unwrap_or_else(|_| fail("bad range end"));
    start..end
}

/// Chooses the error bound from `--abs` / `--eps` (value-range-relative
/// 1e-3 by default, matching `compress`).
fn bound_from(o: &Opts) -> ErrorBound {
    match (o.abs, o.eps) {
        (Some(a), _) => ErrorBound::Absolute(a),
        (None, Some(r)) => ErrorBound::ValueRangeRelative(r),
        (None, None) => ErrorBound::ValueRangeRelative(1e-3),
    }
}

/// Prints frames in the same per-atom layout `extract` uses.
fn print_frames(start: usize, frames: &[Frame]) {
    for (off, f) in frames.iter().enumerate() {
        println!("# frame {}", start + off);
        for i in 0..f.len() {
            println!("X {:.10} {:.10} {:.10}", f.x[i], f.y[i], f.z[i]);
        }
    }
}

/// True when the blob is an indexed (container version 2) archive.
fn is_v2_archive(blob: &[u8]) -> bool {
    blob.get(..4) == Some(b"MDZA") && blob.get(4) == Some(&2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: mdz <compress|decompress|info|extract|verify|gen|store|append|recover|get|serve|query|follow|stats|bench-ingest|bench-serve> …");
        exit(2);
    };
    let o = parse_opts(rest);
    match cmd.as_str() {
        "compress" => {
            let [input, output] = &o.positional[..] else {
                fail("compress needs <in.xyz> <out.mdz>");
            };
            let text = std::fs::read_to_string(input)
                .unwrap_or_else(|e| fail(&format!("reading {input}: {e}")));
            let traj = xyz::parse(&text).unwrap_or_else(|e| fail(&format!("parsing {input}: {e}")));
            let mut cfg = MdzConfig::new(bound_from(&o)).with_method(o.method);
            if o.range_coded {
                cfg = cfg.with_entropy(EntropyStage::Range);
            }
            let blob = archive::compress(&traj, cfg, o.bs)
                .unwrap_or_else(|e| fail(&format!("compressing: {e}")));
            std::fs::write(output, &blob)
                .unwrap_or_else(|e| fail(&format!("writing {output}: {e}")));
            let raw = traj.frames.len() * traj.frames[0].len() * 24;
            println!(
                "{} frames × {} atoms: {} → {} bytes ({:.1}x)",
                traj.frames.len(),
                traj.frames[0].len(),
                raw,
                blob.len(),
                raw as f64 / blob.len() as f64
            );
        }
        "decompress" => {
            let [input, output] = &o.positional[..] else {
                fail("decompress needs <in.mdz> <out.xyz>");
            };
            let blob =
                std::fs::read(input).unwrap_or_else(|e| fail(&format!("reading {input}: {e}")));
            // Indexed (v2) archives go through the store reader; v1 through
            // the streaming decompressor.
            let traj = if is_v2_archive(&blob) {
                let reader = StoreReader::open(blob)
                    .unwrap_or_else(|e| fail(&format!("opening store: {e}")));
                let n = reader.index().n_frames;
                let frames = reader
                    .read_frames(0..n)
                    .unwrap_or_else(|e| fail(&format!("decompressing: {e}")));
                xyz::XyzTrajectory {
                    elements: reader.index().elements.clone(),
                    comments: reader.index().comments.clone(),
                    frames,
                }
            } else {
                archive::decompress(&blob).unwrap_or_else(|e| fail(&format!("decompressing: {e}")))
            };
            std::fs::write(output, xyz::write(&traj))
                .unwrap_or_else(|e| fail(&format!("writing {output}: {e}")));
            println!("restored {} frames × {} atoms", traj.frames.len(), traj.frames[0].len());
        }
        "info" => {
            let [input] = &o.positional[..] else {
                fail("info needs <in.mdz>");
            };
            let blob =
                std::fs::read(input).unwrap_or_else(|e| fail(&format!("reading {input}: {e}")));
            if is_v2_archive(&blob) {
                let total_bytes = blob.len();
                let reader = StoreReader::open(blob)
                    .unwrap_or_else(|e| fail(&format!("opening store: {e}")));
                let idx = reader.index();
                let raw = idx.n_frames * idx.n_atoms * 24;
                println!("atoms:          {}", idx.n_atoms);
                println!("frames:         {}", idx.n_frames);
                println!("buffer size:    {}", idx.buffer_size);
                println!("blocks:         {}", idx.blocks.len());
                println!("epoch interval: {}", idx.epoch_interval);
                println!("epochs:         {}", idx.n_epochs());
                println!("precision:      {}", if idx.f32_source { "f32" } else { "f64" });
                println!(
                    "size:           {} bytes ({:.1}x vs raw f64)",
                    total_bytes,
                    raw as f64 / total_bytes as f64
                );
                return;
            }
            let i = archive::info(&blob).unwrap_or_else(|e| fail(&format!("parsing: {e}")));
            let raw = i.n_frames * i.n_atoms * 24;
            println!("atoms:       {}", i.n_atoms);
            println!("frames:      {}", i.n_frames);
            println!("buffer size: {}", i.buffer_size);
            println!("blocks:      {}", i.n_blocks);
            let methods: Vec<String> =
                i.method_counts.iter().map(|(m, c)| format!("{m} ×{c}")).collect();
            println!("methods:     {}", methods.join(", "));
            println!(
                "size:        {} bytes ({:.1}x vs raw f64)",
                i.total_bytes,
                raw as f64 / i.total_bytes as f64
            );
        }
        "verify" => {
            // One-argument form: full integrity walk of an indexed archive —
            // header, every block CRC, and the footer — reporting the first
            // corrupt byte offset and exiting non-zero.
            if let [archive_path] = &o.positional[..] {
                let blob = std::fs::read(archive_path)
                    .unwrap_or_else(|e| fail(&format!("reading {archive_path}: {e}")));
                match verify_archive(&blob) {
                    Ok(r) => {
                        println!(
                            "{archive_path}: ok — {} frames in {} blocks / {} epochs, {} bytes",
                            r.n_frames, r.n_blocks, r.n_epochs, r.archive_len
                        );
                        return;
                    }
                    Err(fault) => fail(&format!("{archive_path}: {fault}")),
                }
            }
            let [orig_path, mdz_path] = &o.positional[..] else {
                fail("verify needs <archive.mdz> or <original.xyz> <compressed.mdz>");
            };
            let text = std::fs::read_to_string(orig_path)
                .unwrap_or_else(|e| fail(&format!("reading {orig_path}: {e}")));
            let orig = xyz::parse(&text).unwrap_or_else(|e| fail(&format!("parsing: {e}")));
            let blob = std::fs::read(mdz_path)
                .unwrap_or_else(|e| fail(&format!("reading {mdz_path}: {e}")));
            let dec =
                archive::decompress(&blob).unwrap_or_else(|e| fail(&format!("decompressing: {e}")));
            if dec.frames.len() != orig.frames.len()
                || dec.frames.first().map(|f| f.len()) != orig.frames.first().map(|f| f.len())
            {
                fail("trajectory shapes differ");
            }
            let mut flat_o = Vec::new();
            let mut flat_d = Vec::new();
            for (a, b) in orig.frames.iter().zip(dec.frames.iter()) {
                for axis in 0..3 {
                    let (sa, sb) = match axis {
                        0 => (&a.x, &b.x),
                        1 => (&a.y, &b.y),
                        _ => (&a.z, &b.z),
                    };
                    flat_o.extend_from_slice(sa);
                    flat_d.extend_from_slice(sb);
                }
            }
            let stats = mdz::analysis::ErrorStats::compute(&flat_o, &flat_d);
            let raw = orig.frames.len() * orig.frames[0].len() * 24;
            println!("frames:     {} × {} atoms", orig.frames.len(), orig.frames[0].len());
            println!(
                "ratio:      {:.1}x ({} → {} bytes)",
                raw as f64 / blob.len() as f64,
                raw,
                blob.len()
            );
            println!("max error:  {:.3e}", stats.max_error);
            println!("NRMSE:      {:.3e}", stats.nrmse);
            println!("PSNR:       {:.1} dB", stats.psnr);
        }
        "extract" => {
            let [input, frame_str] = &o.positional[..] else {
                fail("extract needs <in.mdz> <frame-index>");
            };
            let frame: usize = frame_str.parse().unwrap_or_else(|_| fail("bad frame index"));
            let blob =
                std::fs::read(input).unwrap_or_else(|e| fail(&format!("reading {input}: {e}")));
            let f = archive::decompress_frame(&blob, frame)
                .unwrap_or_else(|e| fail(&format!("extracting: {e}")));
            println!("{}", f.len());
            println!("frame {frame} extracted from {input}");
            for i in 0..f.len() {
                println!("X {:.10} {:.10} {:.10}", f.x[i], f.y[i], f.z[i]);
            }
        }
        "gen" => {
            let [dataset, output] = &o.positional[..] else {
                fail("gen needs <dataset> <out.xyz>");
            };
            let kind = parse_dataset(dataset);
            let d = datasets::generate(kind, o.scale, o.seed);
            let traj = xyz::XyzTrajectory {
                elements: vec!["X".to_string(); d.atoms()],
                comments: (0..d.len()).map(|t| format!("{} frame {t}", kind.name())).collect(),
                frames: d
                    .snapshots
                    .iter()
                    .map(|s| mdz::core::Frame::new(s.x.clone(), s.y.clone(), s.z.clone()))
                    .collect(),
            };
            std::fs::write(output, xyz::write(&traj))
                .unwrap_or_else(|e| fail(&format!("writing {output}: {e}")));
            println!("wrote {} — {} frames × {} atoms", output, d.len(), d.atoms());
        }
        "store" => {
            let [input, output] = &o.positional[..] else {
                fail("store needs <in.xyz> <out.mdz>");
            };
            let text = std::fs::read_to_string(input)
                .unwrap_or_else(|e| fail(&format!("reading {input}: {e}")));
            let traj = xyz::parse(&text).unwrap_or_else(|e| fail(&format!("parsing {input}: {e}")));
            let mut cfg = MdzConfig::new(bound_from(&o)).with_method(o.method);
            if o.range_coded {
                cfg = cfg.with_entropy(EntropyStage::Range);
            }
            let mut opts = StoreOptions::new(cfg);
            opts.buffer_size = o.bs;
            opts.epoch_interval = o.epoch;
            opts.precision = if o.f32 { Precision::F32 } else { Precision::F64 };
            let blob = write_store(&traj.frames, &traj.elements, &traj.comments, &opts)
                .unwrap_or_else(|e| fail(&format!("compressing: {e}")));
            std::fs::write(output, &blob)
                .unwrap_or_else(|e| fail(&format!("writing {output}: {e}")));
            let raw = traj.frames.len() * traj.frames[0].len() * 24;
            println!(
                "{} frames × {} atoms in {} epochs: {} → {} bytes ({:.1}x)",
                traj.frames.len(),
                traj.frames[0].len(),
                traj.frames.chunks(o.bs.max(1)).count().div_ceil(o.epoch.max(1)),
                raw,
                blob.len(),
                raw as f64 / blob.len() as f64
            );
        }
        "append" => {
            // Remote form: send the frames to a live mdzd, which compresses
            // and appends them server-side. The printed ack is a durability
            // acknowledgment (the server replied only after the fsync'd
            // footer flip).
            if let Some(addr) = &o.remote {
                let [input] = &o.positional[..] else {
                    fail("append --remote <addr> needs <in.xyz>");
                };
                let text = std::fs::read_to_string(input)
                    .unwrap_or_else(|e| fail(&format!("reading {input}: {e}")));
                let traj =
                    xyz::parse(&text).unwrap_or_else(|e| fail(&format!("parsing {input}: {e}")));
                let precision = if o.f32 { Precision::F32 } else { Precision::F64 };
                let policy =
                    RetryPolicy { max_retries: o.retries.unwrap_or(0), ..RetryPolicy::default() };
                let mut client = mdz::store::connect_with_retry(
                    addr.as_str(),
                    &policy,
                    &mdz::store::Obs::noop(),
                )
                .unwrap_or_else(|e| fail(&format!("connecting {addr}: {e}")));
                let ack = client
                    .append(&traj.frames, precision)
                    .unwrap_or_else(|e| fail(&format!("appending: {e}")));
                println!(
                    "appended {} frames in {} blocks at frame {}; archive now holds {} frames",
                    ack.n_frames - ack.start,
                    ack.appended_blocks,
                    ack.start,
                    ack.n_frames
                );
                return;
            }
            let [archive_path, input] = &o.positional[..] else {
                fail("append needs <archive.mdz> <in.xyz> (or --remote <addr> <in.xyz>)");
            };
            let text = std::fs::read_to_string(input)
                .unwrap_or_else(|e| fail(&format!("reading {input}: {e}")));
            let traj = xyz::parse(&text).unwrap_or_else(|e| fail(&format!("parsing {input}: {e}")));
            let mut cfg = MdzConfig::new(bound_from(&o)).with_method(o.method);
            if o.range_coded {
                cfg = cfg.with_entropy(EntropyStage::Range);
            }
            let mut opts = StoreOptions::new(cfg);
            opts.precision = if o.f32 { Precision::F32 } else { Precision::F64 };
            let mut io = FileIo::open(archive_path)
                .unwrap_or_else(|e| fail(&format!("opening {archive_path}: {e}")));
            let report = append_store(&mut io, &traj.frames, &opts)
                .unwrap_or_else(|e| fail(&format!("appending: {e}")));
            if report.recovered_bytes > 0 {
                eprintln!(
                    "note: truncated {} garbage bytes from a torn tail before appending",
                    report.recovered_bytes
                );
            }
            println!(
                "appended {} frames in {} blocks; archive now holds {} frames",
                report.appended_frames, report.appended_blocks, report.n_frames
            );
        }
        "recover" => {
            let [archive_path] = &o.positional[..] else {
                fail("recover needs <archive.mdz>");
            };
            let mut io = FileIo::open(archive_path)
                .unwrap_or_else(|e| fail(&format!("opening {archive_path}: {e}")));
            let report =
                recover_store(&mut io).unwrap_or_else(|e| fail(&format!("recovering: {e}")));
            if report.truncated_bytes == 0 {
                println!("{archive_path}: clean — {} bytes, nothing to do", report.valid_len);
            } else {
                println!(
                    "{archive_path}: truncated {} garbage bytes; {} valid bytes remain",
                    report.truncated_bytes, report.valid_len
                );
            }
        }
        "get" => {
            let [input, range_str] = &o.positional[..] else {
                fail("get needs <in.mdz> <start..end>");
            };
            let range = parse_range(range_str);
            let blob =
                std::fs::read(input).unwrap_or_else(|e| fail(&format!("reading {input}: {e}")));
            let reader =
                StoreReader::open(blob).unwrap_or_else(|e| fail(&format!("opening store: {e}")));
            let frames = reader
                .read_frames(range.clone())
                .unwrap_or_else(|e| fail(&format!("reading frames: {e}")));
            print_frames(range.start, &frames);
            let s = reader.stats();
            eprintln!(
                "read {} frames ({} buffers decoded, {} cache hits)",
                frames.len(),
                s.buffers_decoded,
                s.cache_hits
            );
        }
        "serve" => {
            let [input, addr] = &o.positional[..] else {
                fail("serve needs <in.mdz> <addr>");
            };
            let blob =
                std::fs::read(input).unwrap_or_else(|e| fail(&format!("reading {input}: {e}")));
            // --live opens through the recovery scan (a torn tail must not
            // block serving) and attaches an append sink on the same file.
            let reader = if o.live {
                let (reader, _) = StoreReader::recover(blob)
                    .unwrap_or_else(|e| fail(&format!("opening store: {e}")));
                reader
            } else {
                StoreReader::open(blob).unwrap_or_else(|e| fail(&format!("opening store: {e}")))
            };
            let cfg = ServerConfig { threads: o.threads, engine: o.engine, ..Default::default() };
            let mut server = Server::bind(reader, addr.as_str(), cfg)
                .unwrap_or_else(|e| fail(&format!("binding {addr}: {e}")));
            if o.live {
                let io =
                    FileIo::open(input).unwrap_or_else(|e| fail(&format!("opening {input}: {e}")));
                let mut opts =
                    StoreOptions::new(MdzConfig::new(bound_from(&o)).with_method(o.method));
                opts.precision = if o.f32 { Precision::F32 } else { Precision::F64 };
                server = server.with_append_sink(mdz::store::AppendSink::new(Box::new(io), opts));
            }
            let local = server.local_addr().unwrap_or_else(|e| fail(&format!("local addr: {e}")));
            eprintln!(
                "mdz: serving {input} on {local}{}",
                if o.live { " (live: APPEND enabled)" } else { "" }
            );
            server.run().unwrap_or_else(|e| fail(&format!("serving: {e}")));
        }
        "follow" => {
            let (addr, from) = match &o.positional[..] {
                [addr] => (addr, 0usize),
                [addr, from] => {
                    (addr, from.parse().unwrap_or_else(|_| fail("bad follow start frame")))
                }
                _ => fail("follow needs <addr> [from]"),
            };
            let client = Client::connect(addr.as_str())
                .unwrap_or_else(|e| fail(&format!("connecting {addr}: {e}")));
            let mut follower = client
                .follow(from)
                .unwrap_or_else(|e| fail(&format!("follow: {e}")))
                .with_poll_interval(std::time::Duration::from_millis(o.poll_ms));
            eprintln!("following {addr} from frame {from}");
            // Stream until --until (exclusive upper frame index), or forever.
            loop {
                if let Some(until) = o.until {
                    if follower.position() >= until {
                        return;
                    }
                }
                let start = follower.position();
                let mut frames =
                    follower.next_batch().unwrap_or_else(|e| fail(&format!("follow: {e}")));
                if let Some(until) = o.until {
                    frames.truncate(until.saturating_sub(start));
                }
                print_frames(start, &frames);
            }
        }
        "bench-ingest" => {
            if !o.positional.is_empty() {
                fail("bench-ingest takes only flags: [--scale test|small|full] [--seed N] [--out DIR]");
            }
            let out = std::path::PathBuf::from(o.out.as_deref().unwrap_or("results"));
            let mut ctx = mdz::bench::experiments::Ctx::new(o.scale, out.clone(), o.seed);
            let tables =
                mdz::bench::experiments::run("ingest", &mut ctx).expect("ingest experiment");
            for t in &tables {
                print!("{}", t.render());
            }
            eprintln!("wrote {}", out.join("BENCH_ingest.json").display());
        }
        "bench-serve" => {
            if !o.positional.is_empty() {
                fail("bench-serve takes only flags: [--scale test|small|full] [--seed N] [--out DIR]");
            }
            let out = std::path::PathBuf::from(o.out.as_deref().unwrap_or("results"));
            let mut ctx = mdz::bench::experiments::Ctx::new(o.scale, out.clone(), o.seed);
            let tables = mdz::bench::experiments::run("serve", &mut ctx).expect("serve experiment");
            for t in &tables {
                print!("{}", t.render());
            }
            eprintln!("wrote {}", out.join("BENCH_server.json").display());
        }
        "query" => {
            let [addr, range_str] = &o.positional[..] else {
                fail("query needs <addr> <start..end>");
            };
            let range = parse_range(range_str);
            let frames = match o.retries {
                Some(n) => {
                    let policy = RetryPolicy { max_retries: n, ..RetryPolicy::default() };
                    get_with_retry(addr.as_str(), range.clone(), &policy, &mdz::store::Obs::noop())
                        .unwrap_or_else(|e| fail(&format!("query: {e}")))
                }
                None => {
                    let mut client = Client::connect(addr.as_str())
                        .unwrap_or_else(|e| fail(&format!("connecting {addr}: {e}")));
                    client.get(range.clone()).unwrap_or_else(|e| fail(&format!("query: {e}")))
                }
            };
            print_frames(range.start, &frames);
            eprintln!("fetched {} frames from {addr}", frames.len());
        }
        "stats" => {
            let [addr] = &o.positional[..] else {
                fail("stats needs <addr>");
            };
            let mut client = Client::connect(addr.as_str())
                .unwrap_or_else(|e| fail(&format!("connecting {addr}: {e}")));
            if o.metrics {
                // One METRICS round trip and nothing else, so the snapshot
                // is not perturbed by extra STATS/INFO requests.
                let m = client.metrics().unwrap_or_else(|e| fail(&format!("metrics: {e}")));
                print!("{}", if o.json { m.to_json() } else { m.render_text() });
                return;
            }
            let s = client.stats().unwrap_or_else(|e| fail(&format!("stats: {e}")));
            let i = client.info().unwrap_or_else(|e| fail(&format!("info: {e}")));
            println!(
                "archive:         v{} · {} frames × {} atoms",
                i.version, i.n_frames, i.n_atoms
            );
            println!("requests:        {}", s.requests);
            println!("bytes out:       {}", s.bytes_out);
            println!("cache hits:      {}", s.cache_hits);
            println!("cache misses:    {}", s.cache_misses);
            println!("decode errors:   {}", s.decode_errors);
            println!("buffers decoded: {}", s.buffers_decoded);
        }
        _ => {
            eprintln!("usage: mdz <compress|decompress|info|extract|verify|gen|store|append|recover|get|serve|query|follow|stats|bench-ingest|bench-serve> …");
            exit(2);
        }
    }
}
