//! MDZ — an efficient error-bounded lossy compressor for molecular dynamics.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — the MDZ compressor (VQ / VQT / MT predictors, ADP selection,
//!   error-bounded quantization, container format),
//! * [`sim`] — the molecular-dynamics substrate and dataset generators,
//! * [`analysis`] — compression-quality metrics (PSNR, NRMSE, RDF, …),
//! * [`baselines`] — re-implementations of the paper's comparison compressors,
//! * [`lossless`] — from-scratch LZ77/Gorilla/FPC lossless codecs,
//! * [`kmeans`] — optimal 1-D k-means used by the VQ predictor,
//! * [`entropy`] — bit I/O, varints, and canonical Huffman coding,
//! * [`store`] — the random-access indexed trajectory store and `mdzd`
//!   query server (including live ingest and tail-following clients),
//! * [`mod@bench`] — the benchmark harness regenerating every paper table and
//!   figure (plus the store's throughput/latency/ingest benchmarks).
//!
//! # Quickstart
//!
//! ```
//! use mdz::core::{Compressor, ErrorBound, Method, MdzConfig};
//!
//! // Two snapshots of five atoms (one coordinate axis).
//! let snapshots = vec![
//!     vec![1.00, 2.01, 2.99, 4.02, 5.00],
//!     vec![1.01, 2.02, 3.00, 4.01, 5.01],
//! ];
//! let config = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(Method::Adaptive);
//! let mut compressor = Compressor::new(config);
//! let compressed = compressor.compress_buffer(&snapshots).unwrap();
//! let restored = mdz::core::decompress(&compressed).unwrap();
//! for (s, r) in snapshots.iter().zip(restored.iter()) {
//!     for (a, b) in s.iter().zip(r.iter()) {
//!         assert!((a - b).abs() <= 1e-3);
//!     }
//! }
//! ```

pub mod archive;
pub mod xyz;

pub use mdz_analysis as analysis;
pub use mdz_baselines as baselines;
pub use mdz_bench as bench;
pub use mdz_core as core;
pub use mdz_entropy as entropy;
pub use mdz_kmeans as kmeans;
pub use mdz_lossless as lossless;
pub use mdz_sim as sim;
pub use mdz_store as store;
