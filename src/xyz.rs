//! Minimal XYZ trajectory file support.
//!
//! The XYZ format is the lingua franca of MD visualization: each frame is a
//! particle count line, a comment line, then `element x y z` rows. This
//! module parses and writes multi-frame XYZ files for the `mdz` CLI.

use mdz_core::Frame;
use std::fmt::Write as _;

/// A parsed XYZ trajectory: per-atom element symbols plus position frames.
#[derive(Debug, Clone, PartialEq)]
pub struct XyzTrajectory {
    /// Element symbol per atom (identical across frames).
    pub elements: Vec<String>,
    /// Per-frame comment lines (second line of each frame).
    pub comments: Vec<String>,
    /// Position frames.
    pub frames: Vec<Frame>,
}

/// Errors from XYZ parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XyzError {
    /// A frame header count line was malformed.
    BadCount(usize),
    /// A coordinate row was malformed.
    BadRow(usize),
    /// The file ended in the middle of a frame.
    Truncated,
    /// A later frame's atom list does not match the first frame's.
    InconsistentAtoms(usize),
}

impl std::fmt::Display for XyzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XyzError::BadCount(l) => write!(f, "line {l}: expected an atom count"),
            XyzError::BadRow(l) => write!(f, "line {l}: expected 'element x y z'"),
            XyzError::Truncated => write!(f, "file ends mid-frame"),
            XyzError::InconsistentAtoms(fr) => {
                write!(f, "frame {fr}: atom list differs from frame 0")
            }
        }
    }
}

impl std::error::Error for XyzError {}

/// Parses a (possibly multi-frame) XYZ document.
pub fn parse(text: &str) -> Result<XyzTrajectory, XyzError> {
    let mut lines = text.lines().enumerate().peekable();
    let mut elements: Vec<String> = Vec::new();
    let mut comments = Vec::new();
    let mut frames = Vec::new();
    while let Some(&(lineno, line)) = lines.peek() {
        if line.trim().is_empty() {
            lines.next();
            continue;
        }
        let n: usize = line.trim().parse().map_err(|_| XyzError::BadCount(lineno + 1))?;
        lines.next();
        let comment = lines.next().ok_or(XyzError::Truncated)?.1.to_string();
        let mut frame_elements = Vec::with_capacity(n);
        let mut frame =
            Frame { x: Vec::with_capacity(n), y: Vec::with_capacity(n), z: Vec::with_capacity(n) };
        for _ in 0..n {
            let (rowno, row) = lines.next().ok_or(XyzError::Truncated)?;
            let mut parts = row.split_whitespace();
            let el = parts.next().ok_or(XyzError::BadRow(rowno + 1))?;
            let coord = |p: Option<&str>| -> Result<f64, XyzError> {
                p.ok_or(XyzError::BadRow(rowno + 1))?
                    .parse()
                    .map_err(|_| XyzError::BadRow(rowno + 1))
            };
            frame.x.push(coord(parts.next())?);
            frame.y.push(coord(parts.next())?);
            frame.z.push(coord(parts.next())?);
            frame_elements.push(el.to_string());
        }
        if frames.is_empty() {
            elements = frame_elements;
        } else if frame_elements != elements {
            return Err(XyzError::InconsistentAtoms(frames.len()));
        }
        comments.push(comment);
        frames.push(frame);
    }
    Ok(XyzTrajectory { elements, comments, frames })
}

/// Writes a trajectory as XYZ text.
pub fn write(traj: &XyzTrajectory) -> String {
    let mut out = String::new();
    for (f_idx, frame) in traj.frames.iter().enumerate() {
        let _ = writeln!(out, "{}", frame.len());
        let comment = traj.comments.get(f_idx).map(String::as_str).unwrap_or("");
        let _ = writeln!(out, "{comment}");
        for i in 0..frame.len() {
            let el = traj.elements.get(i).map(String::as_str).unwrap_or("X");
            let _ = writeln!(out, "{el} {:.10} {:.10} {:.10}", frame.x[i], frame.y[i], frame.z[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
3
frame 0
Cu 0.0 0.0 0.0
Cu 1.8075 1.8075 0.0
O  0.5 -0.25 3.25
3
frame 1
Cu 0.01 0.0 0.0
Cu 1.8174 1.8075 0.0
O  0.5 -0.24 3.26
";

    #[test]
    fn parses_multi_frame() {
        let t = parse(SAMPLE).unwrap();
        assert_eq!(t.frames.len(), 2);
        assert_eq!(t.elements, vec!["Cu", "Cu", "O"]);
        assert_eq!(t.comments[1], "frame 1");
        assert_eq!(t.frames[1].x[1], 1.8174);
        assert_eq!(t.frames[0].z[2], 3.25);
    }

    #[test]
    fn round_trips_through_writer() {
        let t = parse(SAMPLE).unwrap();
        let text = write(&t);
        let t2 = parse(&text).unwrap();
        assert_eq!(t2.elements, t.elements);
        assert_eq!(t2.frames.len(), t.frames.len());
        for (a, b) in t.frames.iter().zip(t2.frames.iter()) {
            for i in 0..a.len() {
                assert!((a.x[i] - b.x[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn skips_blank_lines_between_frames() {
        let text = format!("{}\n\n{}", "1\nc\nH 1 2 3", "1\nc\nH 4 5 6");
        let t = parse(&text).unwrap();
        assert_eq!(t.frames.len(), 2);
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse("x\n"), Err(XyzError::BadCount(1)));
        assert_eq!(parse("2\nc\nH 1 2 3\n"), Err(XyzError::Truncated));
        assert_eq!(parse("1\nc\nH 1 2\n"), Err(XyzError::BadRow(3)));
        assert_eq!(parse("1\nc\nH a b c\n"), Err(XyzError::BadRow(3)));
        let inconsistent = "1\nc\nH 1 2 3\n1\nc\nHe 1 2 3\n";
        assert_eq!(parse(inconsistent), Err(XyzError::InconsistentAtoms(1)));
    }

    #[test]
    fn empty_input_is_empty_trajectory() {
        let t = parse("").unwrap();
        assert!(t.frames.is_empty());
    }
}
