//! The `.mdz` archive format: a whole trajectory in one file.
//!
//! Layout:
//!
//! ```text
//! magic "MDZA" · version u8
//! uvarint n_atoms · uvarint n_frames · uvarint buffer_size
//! uvarint meta_len · meta             — LZ-compressed element + comment text
//! repeated: uvarint block_len · u64 fnv1a checksum (LE) · block
//! ```
//!
//! Each block carries an FNV-1a-64 checksum so storage corruption is caught
//! before the decoder sees the bytes.
//!
//! Frames are compressed in buffers of `buffer_size`; blocks must be read
//! in order (MT state). Element symbols and per-frame comments are stored
//! losslessly so `compress → decompress` reproduces a valid XYZ file.

use crate::xyz::XyzTrajectory;
use mdz_core::checksum::fnv1a64 as fnv1a;
use mdz_core::traj::TrajectoryDecompressor;
use mdz_core::{Frame, MdzConfig, MdzError, TrajectoryCompressor};
use mdz_entropy::{read_uvarint, write_uvarint};
use mdz_lossless::lz77;

const MAGIC: [u8; 4] = *b"MDZA";
const VERSION: u8 = 1;

/// Archive-level statistics returned by [`info`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveInfo {
    pub n_atoms: usize,
    pub n_frames: usize,
    pub buffer_size: usize,
    pub n_blocks: usize,
    pub total_bytes: usize,
    /// `(method name, axis-block count)` across all buffers, e.g.
    /// `[("VQ", 4), ("MT", 2)]` — shows what the adaptive selector chose.
    pub method_counts: Vec<(String, usize)>,
}

/// Compresses a trajectory into an `.mdz` archive.
pub fn compress(
    traj: &XyzTrajectory,
    cfg: MdzConfig,
    buffer_size: usize,
) -> Result<Vec<u8>, MdzError> {
    if traj.frames.is_empty() {
        return Err(MdzError::BadInput("trajectory has no frames"));
    }
    let bs = buffer_size.max(1);
    let n_atoms = traj.frames[0].len();
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    write_uvarint(&mut out, n_atoms as u64);
    write_uvarint(&mut out, traj.frames.len() as u64);
    write_uvarint(&mut out, bs as u64);
    // Metadata: element list + comments, newline-framed, LZ-compressed.
    let mut meta = String::new();
    meta.push_str(&traj.elements.join(" "));
    meta.push('\n');
    for c in &traj.comments {
        meta.push_str(c);
        meta.push('\n');
    }
    let meta_c = lz77::compress(meta.as_bytes(), lz77::Level::Default);
    write_uvarint(&mut out, meta_c.len() as u64);
    out.extend_from_slice(&meta_c);

    let mut compressor = TrajectoryCompressor::new(cfg);
    for chunk in traj.frames.chunks(bs) {
        let block = compressor.compress_buffer(chunk)?;
        write_uvarint(&mut out, block.len() as u64);
        out.extend_from_slice(&fnv1a(&block).to_le_bytes());
        out.extend_from_slice(&block);
    }
    Ok(out)
}

/// Decompresses an `.mdz` archive back into a trajectory.
pub fn decompress(data: &[u8]) -> Result<XyzTrajectory, MdzError> {
    let (n_atoms, n_frames, _bs, mut pos, meta) = parse_header(data)?;
    let meta_text =
        String::from_utf8(meta).map_err(|_| MdzError::BadHeader("metadata is not UTF-8"))?;
    let mut meta_lines = meta_text.lines();
    let elements: Vec<String> =
        meta_lines.next().unwrap_or("").split_whitespace().map(str::to_string).collect();
    let comments: Vec<String> = meta_lines.map(str::to_string).collect();

    let mut decompressor = TrajectoryDecompressor::new();
    let mut frames: Vec<Frame> = Vec::with_capacity(n_frames);
    while pos < data.len() && frames.len() < n_frames {
        let block = next_block(data, &mut pos)?;
        frames.extend(decompressor.decompress_buffer(block)?);
    }
    if frames.len() != n_frames {
        return Err(MdzError::BadHeader("frame count mismatch"));
    }
    if frames.iter().any(|f| f.len() != n_atoms) {
        return Err(MdzError::BadHeader("atom count mismatch"));
    }
    Ok(XyzTrajectory { elements, comments, frames })
}

/// Reads archive statistics without decompressing frame data.
pub fn info(data: &[u8]) -> Result<ArchiveInfo, MdzError> {
    let (n_atoms, n_frames, buffer_size, mut pos, _meta) = parse_header(data)?;
    let mut n_blocks = 0;
    let mut counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    while pos < data.len() {
        let container = next_block(data, &mut pos)?;
        n_blocks += 1;
        // Tally per-axis methods (best effort; count parse failures as-is).
        if container.get(..4) == Some(b"MDZT") {
            let mut cpos = 4;
            for _ in 0..3 {
                let Ok(len) = read_uvarint(container, &mut cpos) else { break };
                let Some(end) = cpos.checked_add(len as usize).filter(|&e| e <= container.len())
                else {
                    break;
                };
                if let Ok(bi) = mdz_core::Decompressor::inspect(&container[cpos..end]) {
                    *counts
                        .entry(match bi.method {
                            mdz_core::Method::Vq => "VQ",
                            mdz_core::Method::Vqt => "VQT",
                            mdz_core::Method::Mt => "MT",
                            mdz_core::Method::Mt2 => "MT2",
                            mdz_core::Method::Adaptive => "ADP",
                        })
                        .or_insert(0) += 1;
                }
                cpos = end;
            }
        }
    }
    Ok(ArchiveInfo {
        n_atoms,
        n_frames,
        buffer_size,
        n_blocks,
        total_bytes: data.len(),
        method_counts: counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
    })
}

/// Reads the next `(len, checksum, block)` record, verifying the checksum,
/// and advances `*pos` past it.
fn next_block<'a>(data: &'a [u8], pos: &mut usize) -> Result<&'a [u8], MdzError> {
    let len = read_uvarint(data, pos)? as usize;
    let sum_bytes = data.get(*pos..*pos + 8).ok_or(MdzError::BadHeader("truncated checksum"))?;
    *pos += 8;
    let expected = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= data.len())
        .ok_or(MdzError::BadHeader("truncated block"))?;
    let block = &data[*pos..end];
    if fnv1a(block) != expected {
        return Err(MdzError::BadHeader("block checksum mismatch"));
    }
    *pos = end;
    Ok(block)
}

/// Extracts a single frame.
///
/// Pure-VQ archives support true random access (only the containing block's
/// entropy streams are decoded); other methods fall back to streaming
/// decompression up to the containing buffer.
pub fn decompress_frame(data: &[u8], frame: usize) -> Result<Frame, MdzError> {
    let (_n_atoms, n_frames, bs, mut pos, _meta) = parse_header(data)?;
    if frame >= n_frames {
        return Err(MdzError::BadInput("frame index out of range"));
    }
    let target_block = frame / bs;
    let within = frame % bs;
    // Collect block slices (checksums verified on the way).
    let mut blocks = Vec::new();
    while pos < data.len() && blocks.len() <= target_block {
        blocks.push(next_block(data, &mut pos)?);
    }
    let target = *blocks.get(target_block).ok_or(MdzError::BadHeader("frame count mismatch"))?;
    // Fast path: VQ blocks need no stream state at all.
    if let Ok(f) = random_access_frame(target, within) {
        return Ok(f);
    }
    // Chain-dependent target (VQT/MT/MT2 axes): replay the stream so the
    // decompressor's reference state is correct.
    let mut decompressor = TrajectoryDecompressor::new();
    for block in &blocks[..target_block] {
        decompressor.decompress_buffer(block)?;
    }
    let frames = decompressor.decompress_buffer(target)?;
    frames.into_iter().nth(within).ok_or(MdzError::BadHeader("frame missing from block"))
}

/// Random-access one frame out of a trajectory container (VQ blocks only).
fn random_access_frame(container: &[u8], index: usize) -> Result<Frame, MdzError> {
    let magic = container.get(..4).ok_or(MdzError::BadHeader("truncated container"))?;
    if magic != *b"MDZT" {
        return Err(MdzError::BadHeader("not a trajectory container"));
    }
    let mut pos = 4;
    let mut axes: Vec<Vec<f64>> = Vec::with_capacity(3);
    for _ in 0..3 {
        let len = read_uvarint(container, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= container.len())
            .ok_or(MdzError::BadHeader("truncated axis block"))?;
        axes.push(mdz_core::Decompressor::decompress_snapshot(&container[pos..end], index)?);
        pos = end;
    }
    let z = axes.pop().expect("three axes");
    let y = axes.pop().expect("three axes");
    let x = axes.pop().expect("three axes");
    if x.len() != y.len() || y.len() != z.len() {
        return Err(MdzError::BadHeader("axis particle counts disagree"));
    }
    Ok(Frame { x, y, z })
}

type Header = (usize, usize, usize, usize, Vec<u8>);

fn parse_header(data: &[u8]) -> Result<Header, MdzError> {
    let magic = data.get(..4).ok_or(MdzError::BadHeader("truncated magic"))?;
    if magic != MAGIC {
        return Err(MdzError::BadHeader("not an MDZ archive"));
    }
    let version = *data.get(4).ok_or(MdzError::BadHeader("truncated version"))?;
    if version != VERSION {
        return Err(MdzError::BadHeader("unsupported archive version"));
    }
    let mut pos = 5;
    let n_atoms = read_uvarint(data, &mut pos)? as usize;
    let n_frames = read_uvarint(data, &mut pos)? as usize;
    let bs = read_uvarint(data, &mut pos)? as usize;
    if n_atoms == 0 || n_frames == 0 || bs == 0 {
        return Err(MdzError::BadHeader("empty archive dimensions"));
    }
    let meta_len = read_uvarint(data, &mut pos)? as usize;
    let meta_end = pos
        .checked_add(meta_len)
        .filter(|&e| e <= data.len())
        .ok_or(MdzError::BadHeader("truncated metadata"))?;
    let meta = lz77::decompress(&data[pos..meta_end])?;
    Ok((n_atoms, n_frames, bs, meta_end, meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdz_core::ErrorBound;

    fn sample_traj(m: usize, n: usize) -> XyzTrajectory {
        let frames = (0..m)
            .map(|t| {
                let mk = |off: f64| -> Vec<f64> {
                    (0..n).map(|i| (i % 6) as f64 * 2.0 + off + t as f64 * 1e-4).collect()
                };
                Frame::new(mk(0.0), mk(0.1), mk(0.2))
            })
            .collect();
        XyzTrajectory {
            elements: (0..n).map(|i| if i % 2 == 0 { "Cu".into() } else { "O".into() }).collect(),
            comments: (0..m).map(|t| format!("frame {t}")).collect(),
            frames,
        }
    }

    #[test]
    fn archive_round_trip() {
        let traj = sample_traj(25, 80);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let archive = compress(&traj, cfg, 10).unwrap();
        let out = decompress(&archive).unwrap();
        assert_eq!(out.elements, traj.elements);
        assert_eq!(out.comments, traj.comments);
        assert_eq!(out.frames.len(), traj.frames.len());
        for (a, b) in traj.frames.iter().zip(out.frames.iter()) {
            for i in 0..a.len() {
                assert!((a.x[i] - b.x[i]).abs() <= 1e-3);
                assert!((a.y[i] - b.y[i]).abs() <= 1e-3);
                assert!((a.z[i] - b.z[i]).abs() <= 1e-3);
            }
        }
    }

    #[test]
    fn info_reports_structure() {
        let traj = sample_traj(25, 40);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let archive = compress(&traj, cfg, 10).unwrap();
        let i = info(&archive).unwrap();
        assert_eq!(i.n_atoms, 40);
        assert_eq!(i.n_frames, 25);
        assert_eq!(i.buffer_size, 10);
        assert_eq!(i.n_blocks, 3); // 10 + 10 + 5
        assert_eq!(i.total_bytes, archive.len());
        // 3 buffers × 3 axes = 9 axis blocks, all concrete methods.
        let total: usize = i.method_counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 9, "{:?}", i.method_counts);
    }

    #[test]
    fn archive_compresses() {
        let traj = sample_traj(50, 200);
        let raw = 50 * 200 * 24;
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let archive = compress(&traj, cfg, 10).unwrap();
        assert!(archive.len() * 5 < raw, "{} vs {raw}", archive.len());
    }

    #[test]
    fn frame_extraction_vq_random_access() {
        let traj = sample_traj(25, 60);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(mdz_core::Method::Vq);
        let archive = compress(&traj, cfg, 10).unwrap();
        let full = decompress(&archive).unwrap();
        for k in [0usize, 7, 10, 24] {
            let f = decompress_frame(&archive, k).unwrap();
            assert_eq!(f, full.frames[k], "frame {k}");
        }
        assert!(decompress_frame(&archive, 25).is_err());
    }

    #[test]
    fn frame_extraction_streaming_fallback() {
        let traj = sample_traj(25, 60);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3)).with_method(mdz_core::Method::Mt);
        let archive = compress(&traj, cfg, 10).unwrap();
        let full = decompress(&archive).unwrap();
        for k in [0usize, 13, 24] {
            let f = decompress_frame(&archive, k).unwrap();
            assert_eq!(f, full.frames[k], "frame {k}");
        }
    }

    #[test]
    fn checksum_catches_corruption() {
        let traj = sample_traj(10, 40);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let mut archive = compress(&traj, cfg, 5).unwrap();
        // Flip a byte deep in the block payload (past the header/meta).
        let idx = archive.len() - 3;
        archive[idx] ^= 0xFF;
        assert!(matches!(
            decompress(&archive),
            Err(MdzError::BadHeader("block checksum mismatch"))
        ));
    }

    #[test]
    fn corrupt_archives_error() {
        let traj = sample_traj(5, 20);
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        let archive = compress(&traj, cfg, 2).unwrap();
        assert!(decompress(&archive[..3]).is_err());
        let mut bad = archive.clone();
        bad[0] = b'X';
        assert!(decompress(&bad).is_err());
        assert!(info(&archive[..archive.len() - 1]).is_err());
    }

    #[test]
    fn empty_trajectory_rejected() {
        let traj = XyzTrajectory { elements: vec![], comments: vec![], frames: vec![] };
        let cfg = MdzConfig::new(ErrorBound::Absolute(1e-3));
        assert!(compress(&traj, cfg, 10).is_err());
    }
}
