#!/usr/bin/env sh
# Full offline verification: format, lint, build, test.
#
# Runs entirely against the vendored workspace — no network access needed.
# Usage: scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace --quiet

# Rustdoc examples are executable documentation: every `# Examples`
# block in the workspace compiles and runs (the docs CI job runs the
# same gate).
echo "==> cargo test --doc"
cargo test --workspace --doc --quiet

# Bounded fuzz smoke: deterministic seeded campaigns over every decode
# entry point. 5 000 iterations keeps this step to a few seconds; CI's
# dedicated fuzz-smoke job runs the full 100 000-iteration budget.
echo "==> fuzz smoke (MDZ_FUZZ_ITERS=${MDZ_FUZZ_ITERS:-5000})"
MDZ_FUZZ_ITERS="${MDZ_FUZZ_ITERS:-5000}" cargo test -p mdz-fuzz --release --quiet

# Parallel engine gate: byte-identity across worker counts, then a
# 1-repetition throughput smoke whose JSON artifact is schema-checked by
# the same validator EXPERIMENTS.md's numbers went through.
echo "==> parallel determinism (serial vs workers=4)"
cargo test -p mdz-core --release --quiet --test parallel_determinism

echo "==> throughput smoke (1 rep, JSON schema check)"
tmp_out="$(mktemp -d)"
trap 'rm -rf "$tmp_out"' EXIT
cargo run --release -p mdz-bench --bin experiments -- \
    --scale test --reps 1 --workers 1,2 --out "$tmp_out" throughput > /dev/null
MDZ_BENCH_JSON="$tmp_out/BENCH_throughput.json" \
    cargo test -p mdz-bench --release --quiet --test throughput_json

echo "==> latency smoke (1 rep, JSON schema check)"
cargo run --release -p mdz-bench --bin experiments -- \
    --scale test --reps 1 --out "$tmp_out" latency > /dev/null
MDZ_BENCH_JSON="$tmp_out/BENCH_latency.json" \
    cargo test -p mdz-bench --release --quiet --test latency_json

# Bit-adaptive gate: the round-trip/bound tests for the version-2 block
# format, then the quantizer-comparison experiment whose JSON artifact
# must show the gas-corpus win at a per-value-verified bound.
echo "==> bit-adaptive round-trip smoke"
cargo test -p mdz-core --release --quiet --test bit_adaptive_bound

echo "==> quantizer smoke (JSON schema check)"
cargo run --release -p mdz-bench --bin experiments -- \
    --scale test --out "$tmp_out" quantizer > /dev/null
MDZ_BENCH_JSON="$tmp_out/BENCH_quantizer.json" \
    cargo test -p mdz-bench --release --quiet --test quantizer_json

# Live-ingest bench: a real mdzd with an append sink, a producer
# appending over the wire, and concurrent followers; the JSON artifact
# (append throughput + read-behind-write staleness + follower
# bit-exactness) is schema-checked like the others.
echo "==> ingest smoke (live producer + followers, JSON schema check)"
cargo run --release -p mdz-bench --bin experiments -- \
    --scale test --out "$tmp_out" ingest > /dev/null
MDZ_BENCH_JSON="$tmp_out/BENCH_ingest.json" \
    cargo test -p mdz-bench --release --quiet --test ingest_json

# Store smoke: compress simulated frames into a version-2 archive, serve
# it on an ephemeral loopback port, and require the served range to
# byte-match a local random-access read before shutting the server down.
echo "==> store smoke (archive -> serve -> query -> stats -> shutdown)"
mdz=target/release/mdz
"$mdz" gen lj "$tmp_out/traj.xyz" --scale test --seed 7 > /dev/null
"$mdz" store "$tmp_out/traj.xyz" "$tmp_out/traj.mdz" --bs 1 --epoch 2 > /dev/null
"$mdz" get "$tmp_out/traj.mdz" 1..3 > "$tmp_out/local.txt" 2> /dev/null

# SIMD dispatch smoke: the SIMD kernels are format-invisible, so the same
# round-trip with every kernel forced to the scalar oracle must produce a
# byte-identical archive and byte-identical decoded frames.
echo "==> force-scalar smoke (MDZ_FORCE_SCALAR=1, byte-compared round-trip)"
MDZ_FORCE_SCALAR=1 "$mdz" store "$tmp_out/traj.xyz" "$tmp_out/scalar.mdz" \
    --bs 1 --epoch 2 > /dev/null
cmp "$tmp_out/traj.mdz" "$tmp_out/scalar.mdz"
MDZ_FORCE_SCALAR=1 "$mdz" get "$tmp_out/scalar.mdz" 1..3 \
    > "$tmp_out/scalar.txt" 2> /dev/null
cmp "$tmp_out/local.txt" "$tmp_out/scalar.txt"
rm "$tmp_out/scalar.mdz" "$tmp_out/scalar.txt"

"$mdz" serve "$tmp_out/traj.mdz" 127.0.0.1:0 --threads 2 2> "$tmp_out/serve.log" &
server_pid=$!
trap 'kill "$server_pid" 2> /dev/null; rm -rf "$tmp_out"' EXIT
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/.* on //p' "$tmp_out/serve.log" | head -n 1)"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "store smoke: server did not start"; exit 1; }
"$mdz" query "$addr" 1..3 > "$tmp_out/remote.txt" 2> /dev/null
cmp "$tmp_out/local.txt" "$tmp_out/remote.txt"
"$mdz" stats "$addr" | grep "^requests:" >/dev/null

# Metrics smoke: fetch the full METRICS snapshot as JSON and validate it
# against the traffic just driven — 1 GET (query) plus STATS + INFO (the
# stats command); the METRICS request itself is excluded from its own
# snapshot. The range 1..3 spans two cold epochs (bs=1, epoch=2).
echo "==> metrics smoke (METRICS verb, JSON schema + exact counters)"
"$mdz" stats "$addr" --metrics --json > "$tmp_out/BENCH_metrics.json"
MDZ_BENCH_JSON="$tmp_out/BENCH_metrics.json" \
MDZ_METRICS_EXPECT_REQUESTS=3 \
MDZ_METRICS_EXPECT_GETS=1 \
MDZ_METRICS_EXPECT_CACHE_MISSES=2 \
MDZ_METRICS_EXPECT_CACHE_HITS=0 \
MDZ_METRICS_EXPECT_ERRORS=0 \
    cargo test -p mdz-bench --release --quiet --test metrics_json
"$mdz" stats "$addr" --metrics | grep "store.requests" >/dev/null
kill "$server_pid"
wait "$server_pid" 2> /dev/null || true
trap 'rm -rf "$tmp_out"' EXIT

# Event-engine smoke: the same archive served by the epoll engine must
# answer the same query with the same bytes (FORMAT.md §1.4), and the
# engine's own instrument families must show up in METRICS.
echo "==> epoll engine smoke (serve --engine epoll, byte-identical query)"
"$mdz" serve "$tmp_out/traj.mdz" 127.0.0.1:0 --engine epoll --shards 2 \
    2> "$tmp_out/epoll.log" &
epoll_pid=$!
trap 'kill "$epoll_pid" 2> /dev/null; rm -rf "$tmp_out"' EXIT
eaddr=""
for _ in $(seq 1 100); do
    eaddr="$(sed -n 's/.* on //p' "$tmp_out/epoll.log" | head -n 1)"
    [ -n "$eaddr" ] && break
    sleep 0.1
done
[ -n "$eaddr" ] || { echo "epoll smoke: server did not start"; exit 1; }
"$mdz" query "$eaddr" 1..3 > "$tmp_out/epoll.txt" 2> /dev/null
cmp "$tmp_out/local.txt" "$tmp_out/epoll.txt"
"$mdz" stats "$eaddr" --metrics | grep "server.net.shard0.connections" >/dev/null
kill "$epoll_pid"
wait "$epoll_pid" 2> /dev/null || true
trap 'rm -rf "$tmp_out"' EXIT

# Server load smoke: bench-serve drives both engines (closed-loop and
# open-burst) at test scale; the JSON artifact is schema-checked,
# including the exact request-accounting cross-check in every cell.
echo "==> bench-serve smoke (both engines, JSON schema check)"
"$mdz" bench-serve --scale test --out "$tmp_out" > /dev/null 2>&1
MDZ_BENCH_JSON="$tmp_out/BENCH_server.json" \
    cargo test -p mdz-bench --release --quiet --test server_json

# Crash-consistency smoke: the exhaustive fault-point sweep, then the CLI
# side of the same story — append under the footer-flip protocol, verify
# the full CRC walk, tear the tail with deterministic junk, require verify
# to fail, recover, and require verify to pass again on the pre-tear bytes.
echo "==> crash-consistency sweep (every fault point, ADP/VQ x f32/f64)"
cargo test -p mdz-store --release --quiet --test crash_recovery

echo "==> append/verify/recover smoke (torn tail repaired by mdz recover)"
"$mdz" gen lj "$tmp_out/more.xyz" --scale test --seed 8 > /dev/null
"$mdz" append "$tmp_out/traj.mdz" "$tmp_out/more.xyz" > /dev/null
"$mdz" verify "$tmp_out/traj.mdz" > /dev/null
cp "$tmp_out/traj.mdz" "$tmp_out/clean.mdz"
printf 'torn append scratch bytes' >> "$tmp_out/traj.mdz"
if "$mdz" verify "$tmp_out/traj.mdz" > /dev/null 2>&1; then
    echo "crash smoke: verify accepted a torn tail"; exit 1
fi
"$mdz" recover "$tmp_out/traj.mdz" > /dev/null
"$mdz" verify "$tmp_out/traj.mdz" > /dev/null
cmp "$tmp_out/traj.mdz" "$tmp_out/clean.mdz"

# Live-ingest smoke: a --live server takes remote appends while a
# follower streams; kill -9 between acked appends proves acked == durable
# (the restarted server recovers every acknowledged frame, FORMAT.md
# §1.3), the follower rides out the restart on its transient-retry path,
# and its complete output must byte-equal an offline sequential decode.
echo "==> live-ingest smoke (remote appends, kill -9 + restart, follower resumes)"
"$mdz" gen lj "$tmp_out/live.xyz" --scale test --seed 11 > /dev/null
"$mdz" store "$tmp_out/live.xyz" "$tmp_out/live.mdz" --bs 1 --epoch 2 > /dev/null
base_n="$("$mdz" info "$tmp_out/live.mdz" | sed -n 's/^frames: *//p')"
for seed in 12 13 14; do
    "$mdz" gen lj "$tmp_out/chunk$seed.xyz" --scale test --seed "$seed" > /dev/null
done
total=$((base_n * 4)) # gen frame count depends on scale only, not seed

follow_pid=""
live_pid=""
trap 'kill $live_pid $follow_pid 2> /dev/null || true; rm -rf "$tmp_out"' EXIT
"$mdz" serve "$tmp_out/live.mdz" 127.0.0.1:0 --threads 2 --live \
    2> "$tmp_out/live.log" &
live_pid=$!
laddr=""
for _ in $(seq 1 100); do
    laddr="$(sed -n 's/.* on \([0-9.:]*\).*/\1/p' "$tmp_out/live.log" | head -n 1)"
    [ -n "$laddr" ] && break
    sleep 0.1
done
[ -n "$laddr" ] || { echo "live smoke: server did not start"; exit 1; }

"$mdz" follow "$laddr" 0 --until "$total" --poll-ms 20 \
    > "$tmp_out/follow.txt" 2> /dev/null &
follow_pid=$!

"$mdz" append --remote "$laddr" "$tmp_out/chunk12.xyz" > /dev/null
"$mdz" append --remote "$laddr" "$tmp_out/chunk13.xyz" > /dev/null
kill -9 "$live_pid"
wait "$live_pid" 2> /dev/null || true

# Both appends were acknowledged, so both must have survived the crash.
n_after="$("$mdz" info "$tmp_out/live.mdz" | sed -n 's/^frames: *//p')"
[ "$n_after" -eq $((base_n * 3)) ] \
    || { echo "live smoke: acked frames lost across kill -9 ($n_after)"; exit 1; }

# Restart on the same address (the follower reconnects to it). The port
# may linger briefly after the kill, so retry the bind.
restarted=""
for _ in $(seq 1 50); do
    : > "$tmp_out/live.log"
    "$mdz" serve "$tmp_out/live.mdz" "$laddr" --threads 2 --live \
        2> "$tmp_out/live.log" &
    live_pid=$!
    for _ in $(seq 1 20); do
        grep -q " on " "$tmp_out/live.log" && { restarted=1; break; }
        kill -0 "$live_pid" 2> /dev/null || break
        sleep 0.1
    done
    [ -n "$restarted" ] && break
    wait "$live_pid" 2> /dev/null || true
    sleep 0.2
done
[ -n "$restarted" ] || { echo "live smoke: server did not restart"; exit 1; }

"$mdz" append --remote "$laddr" "$tmp_out/chunk14.xyz" > /dev/null

# The follower exits on its own once it has streamed `total` frames.
for _ in $(seq 1 300); do
    kill -0 "$follow_pid" 2> /dev/null || break
    sleep 0.1
done
if kill -0 "$follow_pid" 2> /dev/null; then
    echo "live smoke: follower did not finish"
    exit 1
fi
wait "$follow_pid" || { echo "live smoke: follower failed"; exit 1; }
follow_pid=""
kill "$live_pid" 2> /dev/null
wait "$live_pid" 2> /dev/null || true
live_pid=""
trap 'rm -rf "$tmp_out"' EXIT

# The streamed frames must byte-equal an offline sequential decode of
# the final archive.
"$mdz" get "$tmp_out/live.mdz" "0..$total" > "$tmp_out/offline.txt" 2> /dev/null
cmp "$tmp_out/follow.txt" "$tmp_out/offline.txt"

echo "verify: all checks passed"
