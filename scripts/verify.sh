#!/usr/bin/env sh
# Full offline verification: format, lint, build, test.
#
# Runs entirely against the vendored workspace — no network access needed.
# Usage: scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace --quiet

# Bounded fuzz smoke: deterministic seeded campaigns over every decode
# entry point. 5 000 iterations keeps this step to a few seconds; CI's
# dedicated fuzz-smoke job runs the full 100 000-iteration budget.
echo "==> fuzz smoke (MDZ_FUZZ_ITERS=${MDZ_FUZZ_ITERS:-5000})"
MDZ_FUZZ_ITERS="${MDZ_FUZZ_ITERS:-5000}" cargo test -p mdz-fuzz --release --quiet

# Parallel engine gate: byte-identity across worker counts, then a
# 1-repetition throughput smoke whose JSON artifact is schema-checked by
# the same validator EXPERIMENTS.md's numbers went through.
echo "==> parallel determinism (serial vs workers=4)"
cargo test -p mdz-core --release --quiet --test parallel_determinism

echo "==> throughput smoke (1 rep, JSON schema check)"
tmp_out="$(mktemp -d)"
trap 'rm -rf "$tmp_out"' EXIT
cargo run --release -p mdz-bench --bin experiments -- \
    --scale test --reps 1 --workers 1,2 --out "$tmp_out" throughput > /dev/null
MDZ_BENCH_JSON="$tmp_out/BENCH_throughput.json" \
    cargo test -p mdz-bench --release --quiet --test throughput_json

echo "==> latency smoke (1 rep, JSON schema check)"
cargo run --release -p mdz-bench --bin experiments -- \
    --scale test --reps 1 --out "$tmp_out" latency > /dev/null
MDZ_BENCH_JSON="$tmp_out/BENCH_latency.json" \
    cargo test -p mdz-bench --release --quiet --test latency_json

# Bit-adaptive gate: the round-trip/bound tests for the version-2 block
# format, then the quantizer-comparison experiment whose JSON artifact
# must show the gas-corpus win at a per-value-verified bound.
echo "==> bit-adaptive round-trip smoke"
cargo test -p mdz-core --release --quiet --test bit_adaptive_bound

echo "==> quantizer smoke (JSON schema check)"
cargo run --release -p mdz-bench --bin experiments -- \
    --scale test --out "$tmp_out" quantizer > /dev/null
MDZ_BENCH_JSON="$tmp_out/BENCH_quantizer.json" \
    cargo test -p mdz-bench --release --quiet --test quantizer_json

# Store smoke: compress simulated frames into a version-2 archive, serve
# it on an ephemeral loopback port, and require the served range to
# byte-match a local random-access read before shutting the server down.
echo "==> store smoke (archive -> serve -> query -> stats -> shutdown)"
mdz=target/release/mdz
"$mdz" gen lj "$tmp_out/traj.xyz" --scale test --seed 7 > /dev/null
"$mdz" store "$tmp_out/traj.xyz" "$tmp_out/traj.mdz" --bs 1 --epoch 2 > /dev/null
"$mdz" get "$tmp_out/traj.mdz" 1..3 > "$tmp_out/local.txt" 2> /dev/null
"$mdz" serve "$tmp_out/traj.mdz" 127.0.0.1:0 --threads 2 2> "$tmp_out/serve.log" &
server_pid=$!
trap 'kill "$server_pid" 2> /dev/null; rm -rf "$tmp_out"' EXIT
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/.* on //p' "$tmp_out/serve.log" | head -n 1)"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "store smoke: server did not start"; exit 1; }
"$mdz" query "$addr" 1..3 > "$tmp_out/remote.txt" 2> /dev/null
cmp "$tmp_out/local.txt" "$tmp_out/remote.txt"
"$mdz" stats "$addr" | grep "^requests:" >/dev/null

# Metrics smoke: fetch the full METRICS snapshot as JSON and validate it
# against the traffic just driven — 1 GET (query) plus STATS + INFO (the
# stats command); the METRICS request itself is excluded from its own
# snapshot. The range 1..3 spans two cold epochs (bs=1, epoch=2).
echo "==> metrics smoke (METRICS verb, JSON schema + exact counters)"
"$mdz" stats "$addr" --metrics --json > "$tmp_out/BENCH_metrics.json"
MDZ_BENCH_JSON="$tmp_out/BENCH_metrics.json" \
MDZ_METRICS_EXPECT_REQUESTS=3 \
MDZ_METRICS_EXPECT_GETS=1 \
MDZ_METRICS_EXPECT_CACHE_MISSES=2 \
MDZ_METRICS_EXPECT_CACHE_HITS=0 \
MDZ_METRICS_EXPECT_ERRORS=0 \
    cargo test -p mdz-bench --release --quiet --test metrics_json
"$mdz" stats "$addr" --metrics | grep "store.requests" >/dev/null
kill "$server_pid"
wait "$server_pid" 2> /dev/null || true
trap 'rm -rf "$tmp_out"' EXIT

# Crash-consistency smoke: the exhaustive fault-point sweep, then the CLI
# side of the same story — append under the footer-flip protocol, verify
# the full CRC walk, tear the tail with deterministic junk, require verify
# to fail, recover, and require verify to pass again on the pre-tear bytes.
echo "==> crash-consistency sweep (every fault point, ADP/VQ x f32/f64)"
cargo test -p mdz-store --release --quiet --test crash_recovery

echo "==> append/verify/recover smoke (torn tail repaired by mdz recover)"
"$mdz" gen lj "$tmp_out/more.xyz" --scale test --seed 8 > /dev/null
"$mdz" append "$tmp_out/traj.mdz" "$tmp_out/more.xyz" > /dev/null
"$mdz" verify "$tmp_out/traj.mdz" > /dev/null
cp "$tmp_out/traj.mdz" "$tmp_out/clean.mdz"
printf 'torn append scratch bytes' >> "$tmp_out/traj.mdz"
if "$mdz" verify "$tmp_out/traj.mdz" > /dev/null 2>&1; then
    echo "crash smoke: verify accepted a torn tail"; exit 1
fi
"$mdz" recover "$tmp_out/traj.mdz" > /dev/null
"$mdz" verify "$tmp_out/traj.mdz" > /dev/null
cmp "$tmp_out/traj.mdz" "$tmp_out/clean.mdz"

echo "verify: all checks passed"
