#!/usr/bin/env sh
# Full offline verification: format, lint, build, test.
#
# Runs entirely against the vendored workspace — no network access needed.
# Usage: scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "verify: all checks passed"
