#!/usr/bin/env sh
# Full offline verification: format, lint, build, test.
#
# Runs entirely against the vendored workspace — no network access needed.
# Usage: scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace --quiet

# Bounded fuzz smoke: deterministic seeded campaigns over every decode
# entry point. 5 000 iterations keeps this step to a few seconds; CI's
# dedicated fuzz-smoke job runs the full 100 000-iteration budget.
echo "==> fuzz smoke (MDZ_FUZZ_ITERS=${MDZ_FUZZ_ITERS:-5000})"
MDZ_FUZZ_ITERS="${MDZ_FUZZ_ITERS:-5000}" cargo test -p mdz-fuzz --release --quiet

echo "verify: all checks passed"
